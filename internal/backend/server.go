package backend

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"webcluster/internal/cache"
	"webcluster/internal/config"
	"webcluster/internal/content"
	"webcluster/internal/faults"
	"webcluster/internal/httpx"
	"webcluster/internal/metrics"
	"webcluster/internal/telemetry"
)

// DynamicHandler produces the response body for a dynamic request. The
// returned cpuCost (abstract work units) feeds the node's service-delay
// model and the §3.3 load metric.
type DynamicHandler func(req *httpx.Request) (body []byte, cpuCost float64, err error)

// ServedRequest describes one request the delay model prices.
type ServedRequest struct {
	Class    content.Class
	Size     int64
	CPUCost  float64
	CacheHit bool
}

// DelayFunc converts a served request into artificial service time,
// letting examples emulate heterogeneous hardware on one machine. A nil
// DelayFunc means no added delay.
type DelayFunc func(ServedRequest) time.Duration

// ServerOptions configures a back-end server.
type ServerOptions struct {
	// Spec identifies the node and sizes its page cache.
	Spec config.NodeSpec
	// Store holds the node's placed content.
	Store Store
	// PageCacheBytes bounds the memory page cache; 0 derives ~60% of
	// MemoryMB (the share of RAM an OS page cache typically claims).
	PageCacheBytes int64
	// Delay injects emulated service time; nil for none.
	Delay DelayFunc
	// Faults, when non-nil, injects connection faults at the accept path
	// (points "backend.accept/<id>" for refusal and "backend.conn/<id>"
	// for per-connection stream faults). Tests only.
	Faults *faults.Injector
	// Telemetry overrides the node's telemetry layer (admin listeners
	// share it with the broker). Nil builds a default one — per-class
	// stats and service spans are always live on a back end.
	Telemetry *telemetry.Telemetry
}

// Server is one back-end web-server node. Construct with NewServer.
type Server struct {
	spec      config.NodeSpec
	store     Store
	pageCache *cache.LRU
	delay     DelayFunc
	faults    *faults.Injector

	mu       sync.Mutex
	handlers map[string]DynamicHandler // keyed by exact path
	prefixes []prefixHandler           // checked in registration order
	conns    map[net.Conn]struct{}

	tel   *telemetry.Telemetry
	stats *telemetry.Registry

	listener net.Listener
	wg       sync.WaitGroup
	closed   chan struct{}
	closeOne sync.Once

	// active tracks in-flight requests, the L4 routers' "connections"
	// load signal.
	active metrics.Counter
	done   metrics.Counter

	// Deadline enforcement (in-band X-Dist-Deadline): requests already
	// overdue on arrival are rejected before any work; requests whose
	// deadline lapses inside the emulated service time are canceled
	// mid-work. Both outcomes are 503s the distributor never retries
	// against another replica — the client has given up either way.
	deadlineRejected *telemetry.Counter
	deadlineCanceled *telemetry.Counter
}

type prefixHandler struct {
	prefix  string
	handler DynamicHandler
}

// NewServer constructs a node server.
func NewServer(opts ServerOptions) (*Server, error) {
	if opts.Store == nil {
		return nil, errors.New("backend: nil store")
	}
	if err := opts.Spec.Validate(); err != nil {
		return nil, fmt.Errorf("backend: %w", err)
	}
	cacheBytes := opts.PageCacheBytes
	if cacheBytes == 0 {
		cacheBytes = int64(opts.Spec.MemoryMB) * 1024 * 1024 * 6 / 10
	}
	tel := opts.Telemetry
	if tel == nil {
		tel = telemetry.New(telemetry.Options{Node: string(opts.Spec.ID)})
	}
	stats := tel.Registry()
	return &Server{
		spec:      opts.Spec,
		store:     opts.Store,
		pageCache: cache.NewLRU(cacheBytes),
		delay:     opts.Delay,
		faults:    opts.Faults,
		tel:       tel,
		stats:     stats,
		handlers:  make(map[string]DynamicHandler),
		conns:     make(map[net.Conn]struct{}),
		closed:    make(chan struct{}),

		deadlineRejected: stats.Counter("backend_deadline_rejected"),
		deadlineCanceled: stats.Counter("backend_deadline_canceled"),
	}, nil
}

// ID returns the node's identity.
func (s *Server) ID() config.NodeID { return s.spec.ID }

// Spec returns the node's hardware description.
func (s *Server) Spec() config.NodeSpec { return s.spec }

// Store exposes the node's content store (the broker operates on it).
func (s *Server) Store() Store { return s.store }

// PageCacheStats reports page-cache effectiveness.
func (s *Server) PageCacheStats() cache.Stats { return s.pageCache.Stats() }

// InvalidateCache drops a path from the page cache. Management agents
// call this after mutating the store so the node never serves stale bytes
// (the file-system change that would invalidate an OS page cache).
func (s *Server) InvalidateCache(path string) { s.pageCache.Remove(path) }

// Stats exposes per-class request statistics.
func (s *Server) Stats() *telemetry.Registry { return s.stats }

// Telemetry exposes the node's telemetry layer (the broker serves it to
// the controller's single-system-image scrapes).
func (s *Server) Telemetry() *telemetry.Telemetry { return s.tel }

// ActiveRequests returns in-flight requests minus completions — the
// instantaneous connection count load metrics use.
func (s *Server) ActiveRequests() int64 { return s.active.Value() - s.done.Value() }

// HandleFunc registers a dynamic handler for an exact path.
func (s *Server) HandleFunc(path string, h DynamicHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[path] = h
}

// HandlePrefix registers a dynamic handler for every path under prefix.
func (s *Server) HandlePrefix(prefix string, h DynamicHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.prefixes = append(s.prefixes, prefixHandler{prefix: prefix, handler: h})
}

// lookupHandler finds a registered dynamic handler for path.
func (s *Server) lookupHandler(path string) (DynamicHandler, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if h, ok := s.handlers[path]; ok {
		return h, true
	}
	for _, ph := range s.prefixes {
		if strings.HasPrefix(path, ph.prefix) {
			return ph.handler, true
		}
	}
	return nil, false
}

// Handle serves one parsed request and returns the response. This is the
// request path shared by the network front end and in-process callers
// (tests, the simulator's real-logic cross-checks).
func (s *Server) Handle(req *httpx.Request) *httpx.Response {
	s.active.Inc()
	defer s.done.Inc()
	start := time.Now()
	resp := s.serve(req)
	class := content.Classify(req.Path).String()
	cs := s.stats.Class(class)
	cs.Requests.Inc()
	cs.Bytes.Add(int64(len(resp.Body)))
	cs.Latency.Observe(time.Since(start))
	if resp.StatusCode >= 400 {
		cs.Errors.Inc()
	}
	return resp
}

// serve produces the response for req.
func (s *Server) serve(req *httpx.Request) *httpx.Response {
	if req.Method != "GET" && req.Method != "POST" && req.Method != "HEAD" {
		return httpx.NewResponse(req.Proto, 400, []byte("unsupported method\n"))
	}
	// In-band deadline (X-Dist-Deadline): work the client has already
	// abandoned is refused before costing anything.
	deadline := req.DeadlineTime()
	if req.DeadlineExpired(time.Now()) {
		s.deadlineRejected.Inc()
		return s.deadlineExceeded(req)
	}
	class := content.Classify(req.Path)

	if h, ok := s.lookupHandler(req.Path); ok {
		body, cpuCost, err := h(req)
		if err != nil {
			return httpx.NewResponse(req.Proto, 500, []byte(err.Error()+"\n"))
		}
		if !s.sleepFor(ServedRequest{Class: class, Size: int64(len(body)), CPUCost: cpuCost}, deadline) {
			s.deadlineCanceled.Inc()
			return s.deadlineExceeded(req)
		}
		resp := httpx.NewResponse(req.Proto, 200, body)
		resp.Header.Set("Content-Type", "text/html")
		resp.Header.Set("X-Served-By", string(s.spec.ID))
		return resp
	}

	// Static path: page cache first, then the store ("disk").
	var (
		body []byte
		hit  bool
	)
	if v, ok := s.pageCache.Get(req.Path); ok {
		b, okb := v.(cache.Bytes)
		if okb {
			body, hit = []byte(b), true
		}
	}
	if !hit {
		data, err := s.store.Fetch(req.Path)
		if err != nil {
			if errors.Is(err, ErrNotStored) {
				return httpx.NewResponse(req.Proto, 404, []byte("not found: "+req.Path+"\n"))
			}
			return httpx.NewResponse(req.Proto, 500, []byte(err.Error()+"\n"))
		}
		body = data
		s.pageCache.Put(req.Path, cache.Bytes(data))
	}
	if !s.sleepFor(ServedRequest{Class: class, Size: int64(len(body)), CacheHit: hit}, deadline) {
		s.deadlineCanceled.Inc()
		return s.deadlineExceeded(req)
	}
	// Conditional requests (the distributor revalidating a cached entry,
	// or a client with a cached copy): the validator is computed only when
	// a conditional header is present, keeping the unconditional path free
	// of the content hash. The store tracks no modification times, so the
	// entity tag is the sole validator.
	var etag string
	if req.Header.Get("If-None-Match") != "" || req.Header.Get("If-Modified-Since") != "" {
		etag = httpx.StrongETag(body)
		if httpx.NotModified(req.Header, etag, time.Time{}) {
			resp := httpx.NewResponse(req.Proto, 304, nil)
			resp.Header.Set("Etag", etag)
			resp.Header.Set("X-Served-By", string(s.spec.ID))
			return resp
		}
	}
	if req.Method == "HEAD" {
		body = nil
	}
	resp := httpx.NewResponse(req.Proto, 200, body)
	resp.Header.Set("X-Served-By", string(s.spec.ID))
	resp.Header.Set("X-Cache", map[bool]string{true: "HIT", false: "MISS"}[hit])
	if etag != "" {
		resp.Header.Set("Etag", etag)
	}
	return resp
}

// SetDelay replaces the emulated service-time function at runtime.
func (s *Server) SetDelay(d DelayFunc) {
	s.mu.Lock()
	s.delay = d
	s.mu.Unlock()
}

// sleepFor applies the emulated service delay, canceling at deadline: it
// reports false when the propagated deadline lapsed before the service
// time completed — the caller abandons the request instead of finishing
// work nobody is waiting for. A zero deadline never cancels.
func (s *Server) sleepFor(r ServedRequest, deadline time.Time) bool {
	s.mu.Lock()
	delay := s.delay
	s.mu.Unlock()
	if delay == nil {
		return true
	}
	d := delay(r)
	if d <= 0 {
		return true
	}
	if !deadline.IsZero() {
		remain := time.Until(deadline)
		if remain <= 0 {
			return false
		}
		if d >= remain {
			// Sleep only the remaining budget, then cancel: the in-flight
			// handler stops the moment the client's wait expires.
			time.Sleep(remain)
			return false
		}
	}
	time.Sleep(d)
	return true
}

// deadlineExceeded is the terminal response for overdue work.
func (s *Server) deadlineExceeded(req *httpx.Request) *httpx.Response {
	resp := httpx.NewResponse(req.Proto, 503, []byte("deadline exceeded\n"))
	resp.Header.Set("X-Served-By", string(s.spec.ID))
	return resp
}

// Serve accepts connections on l until Close. Each connection runs a
// keep-alive loop. Serve blocks; run it in a goroutine and join via Close.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	select {
	case <-s.closed:
		// Close ran before this goroutine registered the listener;
		// shut it here so Close's wait terminates.
		s.mu.Unlock()
		return l.Close()
	default:
	}
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return nil
			default:
				return fmt.Errorf("backend %s: accept: %w", s.spec.ID, err)
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// Start listens on addr and serves in the background, returning the bound
// address (use ":0" to pick a free port).
func (s *Server) Start(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("backend %s: listen: %w", s.spec.ID, err)
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		_ = s.Serve(l)
	}()
	return l.Addr().String(), nil
}

// serveConn runs the keep-alive request loop for one connection.
func (s *Server) serveConn(conn net.Conn) {
	if err := s.faults.Fail("backend.accept/" + string(s.spec.ID)); err != nil {
		_ = conn.Close()
		return
	}
	conn = s.faults.Conn("backend.conn/"+string(s.spec.ID), conn)
	s.mu.Lock()
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	// Pooled reader and request: the keep-alive loop parses every request
	// on this connection without allocating, and response bodies are
	// aliased slices of the page cache / store (WriteResponse does not
	// copy them), so a static hit is served with zero per-request copies.
	br := httpx.AcquireReader(conn)
	defer httpx.ReleaseReader(br)
	req := httpx.AcquireRequest()
	defer httpx.ReleaseRequest(req)
	for {
		err := httpx.ReadRequestInto(br, req)
		if err != nil {
			if !errors.Is(err, io.EOF) && !isClosedConn(err) {
				resp := httpx.NewResponse(httpx.Proto10, 400, []byte("bad request\n"))
				_ = httpx.WriteResponse(conn, resp)
			}
			return
		}
		// A traced request (in-band X-Dist-Trace) gets a service span in
		// this node's ring; the response echoes the trace ID plus this
		// span's ID so the distributor can stitch the two together.
		var sp *telemetry.Span
		if req.TraceID != 0 {
			sp = s.tel.StartSpan(req.TraceID)
			sp.SetRequest(req.Method, req.Path)
		}
		resp := s.Handle(req)
		if sp != nil {
			sp.MarkBackend()
			sp.SetClass(content.Classify(req.Path).String())
			sp.SetStatus(resp.StatusCode)
			sp.SetBytes(int64(len(resp.Body)))
			sp.SetOutcome("served")
			resp.TraceID = sp.TraceID
			resp.SpanID = sp.SpanID
		}
		keep := req.KeepAlive()
		if !keep {
			resp.Header.Set("Connection", "close")
		}
		werr := httpx.WriteResponse(conn, resp)
		if sp != nil {
			sp.MarkReply()
			s.tel.FinishSpan(sp)
		}
		if werr != nil {
			return
		}
		if !keep {
			return
		}
	}
}

// Close stops accepting, closes the listener and joins the connection
// goroutines. Safe to call multiple times.
func (s *Server) Close() error {
	var err error
	s.closeOne.Do(func() {
		close(s.closed)
		s.mu.Lock()
		l := s.listener
		for conn := range s.conns {
			_ = conn.Close()
		}
		s.mu.Unlock()
		if l != nil {
			err = l.Close()
		}
	})
	s.wg.Wait()
	return err
}

// isClosedConn reports whether err is the use-of-closed-connection error
// raised when the listener or a peer shuts mid-read.
func isClosedConn(err error) bool {
	return errors.Is(err, net.ErrClosed) ||
		strings.Contains(err.Error(), "connection reset by peer") ||
		strings.Contains(err.Error(), "broken pipe")
}
