package backend

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"webcluster/internal/config"
	"webcluster/internal/content"
	"webcluster/internal/httpx"
	"webcluster/internal/testutil"
)

func testSpec(id string) config.NodeSpec {
	return config.NodeSpec{
		ID:       config.NodeID(id),
		CPUMHz:   350,
		MemoryMB: 64,
		DiskGB:   4,
		Disk:     config.DiskSCSI,
		Platform: config.LinuxApache,
	}
}

func TestMemStoreCRUD(t *testing.T) {
	var s MemStore
	if s.Has("/a") {
		t.Fatal("empty store has /a")
	}
	if err := s.Put("/a", []byte("xyz")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("/a", []byte("dup")); !errors.Is(err, ErrAlreadyStored) {
		t.Fatalf("duplicate put: %v", err)
	}
	data, err := s.Fetch("/a")
	if err != nil || string(data) != "xyz" {
		t.Fatalf("fetch = %q, %v", data, err)
	}
	if s.UsedBytes() != 3 {
		t.Fatalf("used = %d", s.UsedBytes())
	}
	if got := s.List(); len(got) != 1 || got[0] != "/a" {
		t.Fatalf("list = %v", got)
	}
	if err := s.Delete("/a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("/a"); !errors.Is(err, ErrNotStored) {
		t.Fatalf("double delete: %v", err)
	}
	if _, err := s.Fetch("/a"); !errors.Is(err, ErrNotStored) {
		t.Fatalf("fetch after delete: %v", err)
	}
	if s.UsedBytes() != 0 {
		t.Fatalf("used after delete = %d", s.UsedBytes())
	}
}

func TestMemStoreCopiesData(t *testing.T) {
	var s MemStore
	buf := []byte("abc")
	_ = s.Put("/a", buf)
	buf[0] = 'Z'
	data, _ := s.Fetch("/a")
	if string(data) != "abc" {
		t.Fatal("store aliases caller's buffer")
	}
}

func TestSyntheticStore(t *testing.T) {
	var s SyntheticStore
	if err := s.PlaceSized("/v/big.mpg", 1<<20); err != nil {
		t.Fatal(err)
	}
	if err := s.PlaceSized("/v/big.mpg", 1); !errors.Is(err, ErrAlreadyStored) {
		t.Fatalf("duplicate place: %v", err)
	}
	if err := s.PlaceSized("/neg", -1); err == nil {
		t.Fatal("negative size accepted")
	}
	if !s.Has("/v/big.mpg") {
		t.Fatal("Has failed")
	}
	data, err := s.Fetch("/v/big.mpg")
	if err != nil || int64(len(data)) != 1<<20 {
		t.Fatalf("fetch: %d bytes, %v", len(data), err)
	}
	if s.UsedBytes() != 1<<20 {
		t.Fatalf("used = %d", s.UsedBytes())
	}
	if err := s.Delete("/v/big.mpg"); err != nil {
		t.Fatal(err)
	}
	if s.UsedBytes() != 0 {
		t.Fatal("used not zero after delete")
	}
	// Put works via the data's length.
	if err := s.Put("/p", []byte("12345")); err != nil {
		t.Fatal(err)
	}
	data, _ = s.Fetch("/p")
	if len(data) != 5 {
		t.Fatalf("synthesized %d bytes", len(data))
	}
}

func TestSynthesizeBodyDeterministic(t *testing.T) {
	a := SynthesizeBody("/x/y.html", 1000)
	b := SynthesizeBody("/x/y.html", 1000)
	if !bytes.Equal(a, b) {
		t.Fatal("not deterministic")
	}
	if len(SynthesizeBody("/x", 0)) != 0 {
		t.Fatal("zero size body not empty")
	}
	if !bytes.HasPrefix(a, []byte("/x/y.html\n")) {
		t.Fatal("body does not embed path")
	}
}

// TestPropertySynthesizeBodyLength: any (path, size) yields exactly size
// bytes.
func TestPropertySynthesizeBodyLength(t *testing.T) {
	f := func(pathSuffix string, size uint16) bool {
		body := SynthesizeBody("/"+pathSuffix, int64(size))
		return len(body) == int(size)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func newTestServer(t *testing.T, store Store) *Server {
	t.Helper()
	testutil.NoLeaks(t) // registered before Close so it checks last
	if store == nil {
		store = &MemStore{}
	}
	srv, err := NewServer(ServerOptions{Spec: testSpec("t1"), Store: store})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv
}

func get(path string) *httpx.Request {
	return &httpx.Request{
		Method: "GET", Target: path, Path: path,
		Proto: httpx.Proto11, Header: httpx.Header{},
	}
}

func TestHandleStatic(t *testing.T) {
	store := &MemStore{}
	_ = store.Put("/a.html", []byte("<html>A</html>"))
	srv := newTestServer(t, store)

	resp := srv.Handle(get("/a.html"))
	if resp.StatusCode != 200 || string(resp.Body) != "<html>A</html>" {
		t.Fatalf("resp = %d %q", resp.StatusCode, resp.Body)
	}
	if resp.Header.Get("X-Cache") != "MISS" {
		t.Fatalf("first fetch X-Cache = %q", resp.Header.Get("X-Cache"))
	}
	if resp.Header.Get("X-Served-By") != "t1" {
		t.Fatal("missing X-Served-By")
	}
	resp2 := srv.Handle(get("/a.html"))
	if resp2.Header.Get("X-Cache") != "HIT" {
		t.Fatal("second fetch not a cache hit")
	}
	st := srv.PageCacheStats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("cache stats = %+v", st)
	}
}

func TestHandle404(t *testing.T) {
	srv := newTestServer(t, nil)
	resp := srv.Handle(get("/missing.html"))
	if resp.StatusCode != 404 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if srv.Stats().Class("html").Errors.Value() != 1 {
		t.Fatal("error not counted")
	}
}

func TestHandleBadMethod(t *testing.T) {
	srv := newTestServer(t, nil)
	req := get("/a")
	req.Method = "BREW"
	if resp := srv.Handle(req); resp.StatusCode != 400 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestHandleHead(t *testing.T) {
	store := &MemStore{}
	_ = store.Put("/a.html", []byte("content"))
	srv := newTestServer(t, store)
	req := get("/a.html")
	req.Method = "HEAD"
	resp := srv.Handle(req)
	if resp.StatusCode != 200 || len(resp.Body) != 0 {
		t.Fatalf("HEAD resp = %d, %d bytes", resp.StatusCode, len(resp.Body))
	}
}

func TestDynamicHandlerExact(t *testing.T) {
	srv := newTestServer(t, nil)
	srv.HandleFunc("/cgi-bin/app.cgi", func(req *httpx.Request) ([]byte, float64, error) {
		return []byte("dynamic:" + req.Query), 2.0, nil
	})
	req := get("/cgi-bin/app.cgi")
	req.Query = "q=1"
	resp := srv.Handle(req)
	if resp.StatusCode != 200 || string(resp.Body) != "dynamic:q=1" {
		t.Fatalf("resp = %d %q", resp.StatusCode, resp.Body)
	}
}

func TestDynamicHandlerPrefix(t *testing.T) {
	srv := newTestServer(t, nil)
	srv.HandlePrefix("/asp/", func(req *httpx.Request) ([]byte, float64, error) {
		return []byte("asp:" + req.Path), 1.0, nil
	})
	resp := srv.Handle(get("/asp/any/page.asp"))
	if string(resp.Body) != "asp:/asp/any/page.asp" {
		t.Fatalf("body = %q", resp.Body)
	}
}

func TestDynamicHandlerError(t *testing.T) {
	srv := newTestServer(t, nil)
	srv.HandleFunc("/cgi-bin/fail.cgi", func(*httpx.Request) ([]byte, float64, error) {
		return nil, 0, errors.New("boom")
	})
	resp := srv.Handle(get("/cgi-bin/fail.cgi"))
	if resp.StatusCode != 500 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestExactBeatsPrefix(t *testing.T) {
	srv := newTestServer(t, nil)
	srv.HandlePrefix("/cgi-bin/", func(*httpx.Request) ([]byte, float64, error) {
		return []byte("prefix"), 1, nil
	})
	srv.HandleFunc("/cgi-bin/x.cgi", func(*httpx.Request) ([]byte, float64, error) {
		return []byte("exact"), 1, nil
	})
	if resp := srv.Handle(get("/cgi-bin/x.cgi")); string(resp.Body) != "exact" {
		t.Fatalf("body = %q", resp.Body)
	}
}

func TestInvalidateCache(t *testing.T) {
	store := &MemStore{}
	_ = store.Put("/a.html", []byte("v1"))
	srv := newTestServer(t, store)
	_ = srv.Handle(get("/a.html")) // cached
	_ = store.Delete("/a.html")
	_ = store.Put("/a.html", []byte("v2-longer"))
	srv.InvalidateCache("/a.html")
	resp := srv.Handle(get("/a.html"))
	if string(resp.Body) != "v2-longer" {
		t.Fatalf("stale body %q", resp.Body)
	}
}

func TestPageCacheBounded(t *testing.T) {
	store := &MemStore{}
	for i := 0; i < 10; i++ {
		_ = store.Put(fmt.Sprintf("/f%d", i), make([]byte, 1024))
	}
	srv, err := NewServer(ServerOptions{
		Spec:           testSpec("t1"),
		Store:          store,
		PageCacheBytes: 3 * 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	for i := 0; i < 10; i++ {
		_ = srv.Handle(get(fmt.Sprintf("/f%d", i)))
	}
	st := srv.PageCacheStats()
	if st.Used > 3*1024 {
		t.Fatalf("cache used %d > bound", st.Used)
	}
	if st.Entries > 3 {
		t.Fatalf("entries = %d", st.Entries)
	}
}

func TestServerRejectsNilStore(t *testing.T) {
	if _, err := NewServer(ServerOptions{Spec: testSpec("x")}); err == nil {
		t.Fatal("nil store accepted")
	}
}

func TestServerRejectsBadSpec(t *testing.T) {
	if _, err := NewServer(ServerOptions{Spec: config.NodeSpec{}, Store: &MemStore{}}); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestDelayApplied(t *testing.T) {
	store := &MemStore{}
	_ = store.Put("/a", []byte("x"))
	var sawDelay bool
	srv, err := NewServer(ServerOptions{
		Spec:  testSpec("t1"),
		Store: store,
		Delay: func(r ServedRequest) time.Duration {
			sawDelay = true
			if r.Class != content.ClassHTML {
				t.Errorf("class = %v", r.Class)
			}
			return time.Microsecond
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	_ = srv.Handle(get("/a"))
	if !sawDelay {
		t.Fatal("delay model not consulted")
	}
}

// Network-level tests.

func startServer(t *testing.T, srv *Server) string {
	t.Helper()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return addr
}

func TestServeKeepAlive(t *testing.T) {
	store := &MemStore{}
	_ = store.Put("/a", []byte("AAA"))
	_ = store.Put("/b", []byte("BBBB"))
	srv := newTestServer(t, store)
	addr := startServer(t, srv)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	br := bufio.NewReader(conn)

	for _, path := range []string{"/a", "/b", "/a"} {
		if err := httpx.WriteRequest(conn, get(path)); err != nil {
			t.Fatal(err)
		}
		resp, err := httpx.ReadResponse(br)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s → %d", path, resp.StatusCode)
		}
	}
	// Three requests over one connection: keep-alive held.
	total := srv.Stats().Class("html").Requests.Value()
	if total != 3 {
		t.Fatalf("served = %d requests", total)
	}
}

func TestServeHTTP10Closes(t *testing.T) {
	store := &MemStore{}
	_ = store.Put("/a", []byte("x"))
	srv := newTestServer(t, store)
	addr := startServer(t, srv)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	req := get("/a")
	req.Proto = httpx.Proto10
	if err := httpx.WriteRequest(conn, req); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	resp, err := httpx.ReadResponse(br)
	if err != nil {
		t.Fatal(err)
	}
	if resp.KeepAlive() {
		t.Fatal("HTTP/1.0 response claims keep-alive")
	}
	// Server closes: next read hits EOF.
	_ = conn.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := br.ReadByte(); err == nil {
		t.Fatal("connection stayed open after HTTP/1.0 exchange")
	}
}

func TestServeMalformedRequest(t *testing.T) {
	srv := newTestServer(t, nil)
	addr := startServer(t, srv)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if _, err := conn.Write([]byte("NONSENSE\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	resp, err := httpx.ReadResponse(br)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 400 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestCloseUnblocksOpenConnections(t *testing.T) {
	srv := newTestServer(t, nil)
	addr := startServer(t, srv)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close hung on an idle keep-alive connection")
	}
}

func TestConcurrentClients(t *testing.T) {
	store := &MemStore{}
	for i := 0; i < 10; i++ {
		_ = store.Put(fmt.Sprintf("/f%d", i), []byte("data"))
	}
	srv := newTestServer(t, store)
	addr := startServer(t, srv)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				errs <- err
				return
			}
			defer func() { _ = conn.Close() }()
			br := bufio.NewReader(conn)
			for i := 0; i < 30; i++ {
				if err := httpx.WriteRequest(conn, get(fmt.Sprintf("/f%d", i%10))); err != nil {
					errs <- err
					return
				}
				resp, err := httpx.ReadResponse(br)
				if err != nil || resp.StatusCode != 200 {
					errs <- fmt.Errorf("resp %v %v", resp, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := srv.Stats().Class("html").Requests.Value(); got != 240 {
		t.Fatalf("served %d, want 240", got)
	}
}

func TestActiveRequestsSettlesToZero(t *testing.T) {
	store := &MemStore{}
	_ = store.Put("/a", []byte("x"))
	srv := newTestServer(t, store)
	for i := 0; i < 5; i++ {
		_ = srv.Handle(get("/a"))
	}
	if srv.ActiveRequests() != 0 {
		t.Fatalf("active = %d", srv.ActiveRequests())
	}
}

func TestDirStoreCRUD(t *testing.T) {
	s, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if s.Has("/docs/a.html") {
		t.Fatal("empty store has file")
	}
	if err := s.Put("/docs/a.html", []byte("on disk")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("/docs/a.html", []byte("dup")); !errors.Is(err, ErrAlreadyStored) {
		t.Fatalf("duplicate put: %v", err)
	}
	data, err := s.Fetch("/docs/a.html")
	if err != nil || string(data) != "on disk" {
		t.Fatalf("fetch = %q, %v", data, err)
	}
	if got := s.List(); len(got) != 1 || got[0] != "/docs/a.html" {
		t.Fatalf("list = %v", got)
	}
	if s.UsedBytes() != 7 {
		t.Fatalf("used = %d", s.UsedBytes())
	}
	if err := s.Delete("/docs/a.html"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("/docs/a.html"); !errors.Is(err, ErrNotStored) {
		t.Fatalf("double delete: %v", err)
	}
	// The now-empty /docs directory was pruned.
	if _, err := os.Stat(filepath.Join(s.Root(), "docs")); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("empty dir not pruned: %v", err)
	}
}

func TestDirStoreRejectsTraversal(t *testing.T) {
	s, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"../etc/passwd", "/../../etc/passwd", "/a/../../etc", "/", "relative"} {
		if err := s.Put(p, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted", p)
		}
		if s.Has(p) {
			t.Errorf("Has(%q) true", p)
		}
	}
}

func TestDirStoreServesThroughServer(t *testing.T) {
	s, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Put("/index.html", []byte("<html>disk</html>"))
	srv := newTestServer(t, s)
	resp := srv.Handle(get("/index.html"))
	if resp.StatusCode != 200 || string(resp.Body) != "<html>disk</html>" {
		t.Fatalf("resp = %d %q", resp.StatusCode, resp.Body)
	}
}

func TestDirStoreAgentLifecycle(t *testing.T) {
	// The broker's file agents operate on a real directory.
	dir := t.TempDir()
	s, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("/deep/nested/file.html", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	ondisk := filepath.Join(dir, "deep", "nested", "file.html")
	if _, err := os.Stat(ondisk); err != nil {
		t.Fatalf("file not on disk: %v", err)
	}
}

// TestDeadlineRejectsOverdueRequest: a request whose propagated
// X-Dist-Deadline already lapsed is refused before any work.
func TestDeadlineRejectsOverdueRequest(t *testing.T) {
	store := &MemStore{}
	_ = store.Put("/a.html", []byte("<html>A</html>"))
	srv := newTestServer(t, store)

	req := get("/a.html")
	req.Deadline = time.Now().Add(-time.Second).UnixNano()
	resp := srv.Handle(req)
	if resp.StatusCode != 503 {
		t.Fatalf("overdue request got %d, want 503", resp.StatusCode)
	}
	if srv.Stats().Counter("backend_deadline_rejected").Value() != 1 {
		t.Fatal("rejection not counted")
	}

	// A future deadline leaves the request untouched.
	req2 := get("/a.html")
	req2.Deadline = time.Now().Add(time.Minute).UnixNano()
	if resp := srv.Handle(req2); resp.StatusCode != 200 {
		t.Fatalf("future-deadline request got %d", resp.StatusCode)
	}
}

// TestDeadlineCancelsMidWork: the emulated service time is cut short the
// moment the propagated deadline lapses, and the handler answers 503
// instead of finishing work nobody is waiting for.
func TestDeadlineCancelsMidWork(t *testing.T) {
	store := &MemStore{}
	_ = store.Put("/a.html", []byte("<html>A</html>"))
	srv := newTestServer(t, store)
	srv.SetDelay(func(ServedRequest) time.Duration { return time.Second })

	req := get("/a.html")
	req.Deadline = time.Now().Add(20 * time.Millisecond).UnixNano()
	start := time.Now()
	resp := srv.Handle(req)
	took := time.Since(start)
	if resp.StatusCode != 503 {
		t.Fatalf("canceled request got %d, want 503", resp.StatusCode)
	}
	if took >= 500*time.Millisecond {
		t.Fatalf("handler ran the full service time (%v) past the deadline", took)
	}
	if srv.Stats().Counter("backend_deadline_canceled").Value() != 1 {
		t.Fatal("cancellation not counted")
	}
}
