package telemetry

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestBucketBoundaries(t *testing.T) {
	// Values below 2^subBits land in exact unit buckets.
	cases := []struct {
		v    int64
		name string
	}{
		{0, "zero"}, {1, "one"}, {31, "last-unit"},
		{32, "first-log"}, {33, "log+1"}, {63, "end-first-log"},
		{64, "second-log"}, {1 << 20, "1Mi"}, {1<<62 + 1, "huge"},
	}
	for _, c := range cases {
		idx := bucketIndex(c.v)
		if idx < 0 || idx >= numBuckets {
			t.Fatalf("%s: bucketIndex(%d) = %d out of range", c.name, c.v, idx)
		}
		// The bucket's upper bound must not be below the value itself
		// (the histogram reports upper bounds, never underestimates).
		if ub := bucketBound(idx); ub < c.v {
			t.Errorf("%s: bucketBound(%d) = %d < value %d", c.name, idx, ub, c.v)
		}
	}
	// Exact unit buckets: values < 32 map to their own index.
	for v := int64(0); v < 32; v++ {
		if got := bucketIndex(v); got != int(v) {
			t.Errorf("bucketIndex(%d) = %d, want %d", v, got, v)
		}
		if got := bucketBound(int(v)); got != v {
			t.Errorf("bucketBound(%d) = %d, want %d", v, got, v)
		}
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	h.ObserveNs(-5) // clamps to zero, still counted
	for i := int64(1); i <= 100; i++ {
		h.ObserveNs(i)
	}
	if got := h.Count(); got != 101 {
		t.Fatalf("Count = %d, want 101", got)
	}
	if got := h.Max(); got != 100 {
		t.Fatalf("Max = %d, want 100", got)
	}
	// Quantiles on a log-linear histogram report bucket upper bounds:
	// never below the true quantile, and within one bucket's resolution.
	p50 := h.Quantile(0.5)
	if p50 < 50 || p50 > 53 {
		t.Errorf("P50 = %d, want ~50 (upper bound within bucket width)", p50)
	}
	if q := h.Quantile(1.0); q < 100 {
		t.Errorf("P100 = %d, want >= 100", q)
	}
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 {
		t.Fatalf("Reset left state: count=%d sum=%d max=%d", h.Count(), h.Sum(), h.Max())
	}
}

func TestHistogramObserveNs(t *testing.T) {
	var h Histogram
	h.Observe(3 * time.Millisecond)
	if h.Count() != 1 {
		t.Fatalf("Count = %d, want 1", h.Count())
	}
	if h.Sum() != 3*time.Millisecond {
		t.Fatalf("Sum = %v, want %v", h.Sum(), 3*time.Millisecond)
	}
}

// TestHistogramConcurrentObserve hammers one histogram from many
// goroutines (run under -race) and checks the tallies add up, including
// values straddling the linear/log boundary and the overflow bucket.
func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	values := []int64{0, 1, 31, 32, 63, 64, 1 << 10, 1 << 40, 1<<63 - 1}
	const workers = 8
	const rounds = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				h.ObserveNs(values[(seed+i)%len(values)])
			}
		}(w)
	}
	wg.Wait()
	if got, want := h.Count(), int64(workers*rounds); got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
	snap := h.Snapshot()
	var n int64
	for _, b := range snap.Buckets {
		n += b.Count
	}
	if n != int64(workers*rounds) {
		t.Fatalf("bucket counts sum to %d, want %d", n, workers*rounds)
	}
	if h.Max() != 1<<63-1 {
		t.Fatalf("Max = %d, want MaxInt64", h.Max())
	}
}

// TestSnapshotMergeConcurrent merges snapshots taken while observers are
// still writing (run under -race): merge totals must equal the final
// per-histogram totals once writers stop.
func TestSnapshotMergeConcurrent(t *testing.T) {
	var a, b Histogram
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := int64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
				a.ObserveNs(i%1000 + 1)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := int64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
				b.ObserveNs(i%100000 + 1)
			}
		}
	}()
	// Wait for both observers to record something, so the final quantile
	// assertions below have data regardless of scheduling.
	for a.Count() == 0 || b.Count() == 0 {
		runtime.Gosched()
	}
	// Take merged snapshots mid-flight; they only need to be self-
	// consistent (bucket sum == count is not guaranteed mid-observe since
	// count and bucket increments are separate atomics, but merge must
	// never lose or invent buckets relative to its inputs).
	for i := 0; i < 50; i++ {
		var m HistSnapshot
		sa, sb := a.Snapshot(), b.Snapshot()
		m.Merge(sa)
		m.Merge(sb)
		if m.Count != sa.Count+sb.Count {
			t.Fatalf("merged count %d != %d + %d", m.Count, sa.Count, sb.Count)
		}
		if m.SumNs != sa.SumNs+sb.SumNs {
			t.Fatalf("merged sum %d != %d + %d", m.SumNs, sa.SumNs, sb.SumNs)
		}
	}
	close(stop)
	wg.Wait()

	var m HistSnapshot
	m.Merge(a.Snapshot())
	m.Merge(b.Snapshot())
	if m.Count != a.Count()+b.Count() {
		t.Fatalf("final merged count %d, want %d", m.Count, a.Count()+b.Count())
	}
	var n int64
	for _, bk := range m.Buckets {
		n += bk.Count
	}
	if n != m.Count {
		t.Fatalf("final merged buckets sum %d, want %d", n, m.Count)
	}
	if m.MaxNs < int64(a.Max()) || m.MaxNs < int64(b.Max()) {
		t.Fatalf("merged max %d below inputs (%v, %v)", m.MaxNs, a.Max(), b.Max())
	}
	// Quantile sanity on the merged view.
	if q := m.Quantile(0.5); q <= 0 {
		t.Fatalf("merged P50 = %d, want > 0", q)
	}
}

func TestMergeDisjointBuckets(t *testing.T) {
	var a, b Histogram
	a.ObserveNs(1)
	a.ObserveNs(1000)
	b.ObserveNs(5)
	b.ObserveNs(1 << 30)
	var m HistSnapshot
	m.Merge(a.Snapshot())
	m.Merge(b.Snapshot())
	if m.Count != 4 {
		t.Fatalf("Count = %d, want 4", m.Count)
	}
	// Buckets must be index-sorted after merging interleaved inputs.
	for i := 1; i < len(m.Buckets); i++ {
		if m.Buckets[i-1].Index >= m.Buckets[i].Index {
			t.Fatalf("buckets not sorted: %v", m.Buckets)
		}
	}
}
