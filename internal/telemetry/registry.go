package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta, which must be non-negative.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable instantaneous value. The zero value is ready to use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// ClassStats aggregates request outcomes for one content class. All
// fields are independently atomic; the request path touches no lock.
type ClassStats struct {
	Requests Counter
	Bytes    Counter
	Errors   Counter
	Latency  Histogram
}

// Registry groups a node's live metrics: per-class request statistics on
// a copy-on-write read path (class churn is rare, reads are per-request),
// plus named counters, gauges and gauge callbacks for component-specific
// series (cache verdicts, pool occupancy). It encodes itself as
// Prometheus text exposition and as a mergeable JSON snapshot. Construct
// with NewRegistry.
type Registry struct {
	node  string
	clock func() time.Time
	start time.Time

	// classes is a copy-on-write map: readers load and index, the writer
	// clones under classMu and publishes the new map.
	classes atomic.Pointer[map[string]*ClassStats]
	classMu sync.Mutex

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]func() float64
}

// NewRegistry returns a registry labeled with the owning node's identity.
func NewRegistry(node string) *Registry { return NewRegistryAt(node, time.Now) }

// NewRegistryAt is NewRegistry with an injected clock (uptime and
// snapshot timestamps derive from it; tests pin it for golden output).
func NewRegistryAt(node string, clock func() time.Time) *Registry {
	if clock == nil {
		clock = time.Now
	}
	return &Registry{node: node, clock: clock, start: clock()}
}

// Node returns the registry's node label.
func (r *Registry) Node() string { return r.node }

// Uptime returns time elapsed since the registry was created.
func (r *Registry) Uptime() time.Duration { return r.clock().Sub(r.start) }

// Class returns the stats bucket for name, creating it on first use. The
// hot path is one atomic load plus a map read; creation takes the writer
// lock and republishes a cloned map (copy-on-write).
func (r *Registry) Class(name string) *ClassStats {
	if m := r.classes.Load(); m != nil {
		if cs, ok := (*m)[name]; ok {
			return cs
		}
	}
	r.classMu.Lock()
	defer r.classMu.Unlock()
	old := r.classes.Load()
	if old != nil {
		if cs, ok := (*old)[name]; ok {
			return cs
		}
	}
	next := make(map[string]*ClassStats)
	if old != nil {
		for k, v := range *old {
			next[k] = v
		}
	}
	cs := &ClassStats{}
	next[name] = cs
	r.classes.Store(&next)
	return cs
}

// Classes returns the registered class names in sorted order.
func (r *Registry) Classes() []string {
	m := r.classes.Load()
	if m == nil {
		return nil
	}
	names := make([]string, 0, len(*m))
	for name := range *m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Summary formats one line per class: "class: N reqs, mean latency".
func (r *Registry) Summary() string {
	var out string
	for _, name := range r.Classes() {
		cs := r.Class(name)
		out += fmt.Sprintf("%s: %d reqs, %d errors, mean %v\n",
			name, cs.Requests.Value(), cs.Errors.Value(), cs.Latency.Mean())
	}
	return out
}

// Counter returns the named counter, creating it on first use. Callers
// hold the returned pointer; registration is not a hot path.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = make(map[string]*Gauge)
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a callback sampled at exposition/snapshot time —
// the zero-synchronization way to export values another component already
// maintains (cache bytes, pool occupancy).
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gaugeFns == nil {
		r.gaugeFns = make(map[string]func() float64)
	}
	r.gaugeFns[name] = fn
}

// ClassSnapshot is one class's aggregated outcomes in a Snapshot.
type ClassSnapshot struct {
	Requests int64        `json:"requests"`
	Bytes    int64        `json:"bytes"`
	Errors   int64        `json:"errors"`
	Latency  HistSnapshot `json:"latency"`
}

// Snapshot is a point-in-time, JSON-encodable copy of a registry. Every
// field merges additively across nodes (histograms by bucket, counters by
// sum), which is what the controller's single-system-image stats rely on.
type Snapshot struct {
	Node      string                   `json:"node"`
	UptimeSec float64                  `json:"uptimeSec"`
	Counters  map[string]int64         `json:"counters,omitempty"`
	Gauges    map[string]float64       `json:"gauges,omitempty"`
	Classes   map[string]ClassSnapshot `json:"classes,omitempty"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Node: r.node, UptimeSec: r.Uptime().Seconds()}
	if m := r.classes.Load(); m != nil && len(*m) > 0 {
		s.Classes = make(map[string]ClassSnapshot, len(*m))
		for name, cs := range *m {
			s.Classes[name] = ClassSnapshot{
				Requests: cs.Requests.Value(),
				Bytes:    cs.Bytes.Value(),
				Errors:   cs.Errors.Value(),
				Latency:  cs.Latency.Snapshot(),
			}
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges)+len(r.gaugeFns) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges)+len(r.gaugeFns))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
		for name, fn := range r.gaugeFns {
			s.Gauges[name] = fn()
		}
	}
	return s
}

// exposition quantiles for latency summaries.
var summaryQuantiles = []float64{0.5, 0.9, 0.99}

// WritePrometheus encodes the registry in Prometheus text exposition
// format: per-class requests/bytes/errors as counters, per-class latency
// as a summary (quantile-labeled series plus _sum and _count), and every
// named counter/gauge with the node label attached.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("# HELP webcluster_uptime_seconds Seconds since this node's registry was created.\n")
	p("# TYPE webcluster_uptime_seconds gauge\n")
	p("webcluster_uptime_seconds{node=%q} %s\n", r.node, fmtFloat(r.Uptime().Seconds()))

	classes := r.Classes()
	if len(classes) > 0 {
		p("# HELP webcluster_class_requests_total Requests served, by content class.\n")
		p("# TYPE webcluster_class_requests_total counter\n")
		for _, name := range classes {
			p("webcluster_class_requests_total{node=%q,class=%q} %d\n", r.node, name, r.Class(name).Requests.Value())
		}
		p("# HELP webcluster_class_bytes_total Body bytes delivered, by content class.\n")
		p("# TYPE webcluster_class_bytes_total counter\n")
		for _, name := range classes {
			p("webcluster_class_bytes_total{node=%q,class=%q} %d\n", r.node, name, r.Class(name).Bytes.Value())
		}
		p("# HELP webcluster_class_errors_total Error responses (status >= 400), by content class.\n")
		p("# TYPE webcluster_class_errors_total counter\n")
		for _, name := range classes {
			p("webcluster_class_errors_total{node=%q,class=%q} %d\n", r.node, name, r.Class(name).Errors.Value())
		}
		p("# HELP webcluster_class_request_seconds Request service latency, by content class.\n")
		p("# TYPE webcluster_class_request_seconds summary\n")
		for _, name := range classes {
			cs := r.Class(name)
			for _, q := range summaryQuantiles {
				p("webcluster_class_request_seconds{node=%q,class=%q,quantile=%q} %s\n",
					r.node, name, fmtFloat(q), fmtFloat(cs.Latency.Quantile(q).Seconds()))
			}
			p("webcluster_class_request_seconds_sum{node=%q,class=%q} %s\n", r.node, name, fmtFloat(cs.Latency.Sum().Seconds()))
			p("webcluster_class_request_seconds_count{node=%q,class=%q} %d\n", r.node, name, cs.Latency.Count())
		}
	}

	r.mu.Lock()
	counterNames := sortedKeys(r.counters)
	gaugeNames := sortedKeys(r.gauges)
	fnNames := sortedKeys(r.gaugeFns)
	r.mu.Unlock()
	for _, name := range counterNames {
		p("# TYPE %s counter\n", name)
		p("%s{node=%q} %d\n", name, r.node, r.Counter(name).Value())
	}
	for _, name := range gaugeNames {
		p("# TYPE %s gauge\n", name)
		p("%s{node=%q} %s\n", name, r.node, fmtFloat(r.Gauge(name).Value()))
	}
	for _, name := range fnNames {
		r.mu.Lock()
		fn := r.gaugeFns[name]
		r.mu.Unlock()
		p("# TYPE %s gauge\n", name)
		p("%s{node=%q} %s\n", name, r.node, fmtFloat(fn()))
	}
	return err
}

// fmtFloat renders a float the way Prometheus expects (shortest exact
// form, no exponent for typical magnitudes).
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sortedKeys returns a map's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// MergeSnapshots folds per-node snapshots into one cluster-wide snapshot:
// counters, class stats and histograms add; gauges add too (the
// meaningful cluster reading for occupancy-style gauges); uptime is the
// maximum (the cluster has been up as long as its oldest node).
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	out := Snapshot{Node: "cluster"}
	for _, s := range snaps {
		if s.UptimeSec > out.UptimeSec {
			out.UptimeSec = s.UptimeSec
		}
		for name, v := range s.Counters {
			if out.Counters == nil {
				out.Counters = make(map[string]int64)
			}
			out.Counters[name] += v
		}
		for name, v := range s.Gauges {
			if out.Gauges == nil {
				out.Gauges = make(map[string]float64)
			}
			out.Gauges[name] += v
		}
		for name, cs := range s.Classes {
			if out.Classes == nil {
				out.Classes = make(map[string]ClassSnapshot)
			}
			agg := out.Classes[name]
			agg.Requests += cs.Requests
			agg.Bytes += cs.Bytes
			agg.Errors += cs.Errors
			agg.Latency.Merge(cs.Latency)
			out.Classes[name] = agg
		}
	}
	return out
}

// ClassSummary is one class's cluster-wide aggregate in a ClusterStats.
type ClassSummary struct {
	Class      string  `json:"class"`
	Requests   int64   `json:"requests"`
	Errors     int64   `json:"errors"`
	Bytes      int64   `json:"bytes"`
	RatePerSec float64 `json:"ratePerSec"`
	MeanNs     int64   `json:"meanNs"`
	P50Ns      int64   `json:"p50Ns"`
	P90Ns      int64   `json:"p90Ns"`
	P99Ns      int64   `json:"p99Ns"`
	MaxNs      int64   `json:"maxNs"`
}

// ClusterStats is the single-system-image view the console's stats verb
// renders: per-class latency/throughput merged across every node that
// contributed a snapshot.
type ClusterStats struct {
	Sources []string       `json:"sources"`
	Classes []ClassSummary `json:"classes"`
	Merged  Snapshot       `json:"merged"`
}

// Summarize merges snapshots and derives the per-class summary table.
// Rates divide by the longest contributor uptime — the cluster-wide
// requests-per-second reading.
func Summarize(snaps ...Snapshot) ClusterStats {
	merged := MergeSnapshots(snaps...)
	stats := ClusterStats{Merged: merged}
	for _, s := range snaps {
		stats.Sources = append(stats.Sources, s.Node)
	}
	sort.Strings(stats.Sources)
	for _, name := range sortedKeys(merged.Classes) {
		cs := merged.Classes[name]
		sum := ClassSummary{
			Class:    name,
			Requests: cs.Requests,
			Errors:   cs.Errors,
			Bytes:    cs.Bytes,
			MeanNs:   int64(cs.Latency.Mean()),
			P50Ns:    int64(cs.Latency.Quantile(0.5)),
			P90Ns:    int64(cs.Latency.Quantile(0.9)),
			P99Ns:    int64(cs.Latency.Quantile(0.99)),
			MaxNs:    cs.Latency.MaxNs,
		}
		if merged.UptimeSec > 0 {
			sum.RatePerSec = float64(cs.Requests) / merged.UptimeSec
		}
		stats.Classes = append(stats.Classes, sum)
	}
	return stats
}
