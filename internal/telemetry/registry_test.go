package telemetry

import (
	"strings"
	"testing"
	"time"
)

// fixedClock returns a clock pinned at start plus the accumulated steps.
func fixedClock(start time.Time) (func() time.Time, func(time.Duration)) {
	now := start
	return func() time.Time { return now }, func(d time.Duration) { now = now.Add(d) }
}

func TestRegistryClassCOW(t *testing.T) {
	r := NewRegistry("n1")
	a := r.Class("html")
	b := r.Class("html")
	if a != b {
		t.Fatal("Class returned distinct stats for the same name")
	}
	r.Class("cgi")
	got := r.Classes()
	if len(got) != 2 || got[0] != "cgi" || got[1] != "html" {
		t.Fatalf("Classes = %v, want [cgi html]", got)
	}
}

// TestWritePrometheusGolden pins the clock and checks the full text
// exposition byte-for-byte, so any accidental format drift (labels,
// ordering, float rendering) fails loudly.
func TestWritePrometheusGolden(t *testing.T) {
	clock, advance := fixedClock(time.Unix(1700000000, 0))
	r := NewRegistryAt("front-1", clock)
	advance(90 * time.Second)

	html := r.Class("html")
	html.Requests.Add(5)
	html.Bytes.Add(4096)
	html.Errors.Inc()
	for i := 0; i < 5; i++ {
		html.Latency.Observe(2 * time.Millisecond)
	}
	cgi := r.Class("cgi")
	cgi.Requests.Inc()
	cgi.Latency.Observe(10 * time.Millisecond)

	r.Counter("relay_errors_total").Add(3)
	r.Gauge("pool_idle").Set(7)
	r.GaugeFunc("table_entries", func() float64 { return 42 })

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}

	// The log-linear histogram reports bucket upper bounds: 2ms lands in
	// the bucket whose bound is 2031615ns, 10ms in the 10223615ns bucket.
	const want = `# HELP webcluster_uptime_seconds Seconds since this node's registry was created.
# TYPE webcluster_uptime_seconds gauge
webcluster_uptime_seconds{node="front-1"} 90
# HELP webcluster_class_requests_total Requests served, by content class.
# TYPE webcluster_class_requests_total counter
webcluster_class_requests_total{node="front-1",class="cgi"} 1
webcluster_class_requests_total{node="front-1",class="html"} 5
# HELP webcluster_class_bytes_total Body bytes delivered, by content class.
# TYPE webcluster_class_bytes_total counter
webcluster_class_bytes_total{node="front-1",class="cgi"} 0
webcluster_class_bytes_total{node="front-1",class="html"} 4096
# HELP webcluster_class_errors_total Error responses (status >= 400), by content class.
# TYPE webcluster_class_errors_total counter
webcluster_class_errors_total{node="front-1",class="cgi"} 0
webcluster_class_errors_total{node="front-1",class="html"} 1
# HELP webcluster_class_request_seconds Request service latency, by content class.
# TYPE webcluster_class_request_seconds summary
webcluster_class_request_seconds{node="front-1",class="cgi",quantile="0.5"} 0.010223615
webcluster_class_request_seconds{node="front-1",class="cgi",quantile="0.9"} 0.010223615
webcluster_class_request_seconds{node="front-1",class="cgi",quantile="0.99"} 0.010223615
webcluster_class_request_seconds_sum{node="front-1",class="cgi"} 0.01
webcluster_class_request_seconds_count{node="front-1",class="cgi"} 1
webcluster_class_request_seconds{node="front-1",class="html",quantile="0.5"} 0.002031615
webcluster_class_request_seconds{node="front-1",class="html",quantile="0.9"} 0.002031615
webcluster_class_request_seconds{node="front-1",class="html",quantile="0.99"} 0.002031615
webcluster_class_request_seconds_sum{node="front-1",class="html"} 0.01
webcluster_class_request_seconds_count{node="front-1",class="html"} 5
# TYPE relay_errors_total counter
relay_errors_total{node="front-1"} 3
# TYPE pool_idle gauge
pool_idle{node="front-1"} 7
# TYPE table_entries gauge
table_entries{node="front-1"} 42
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
		// Pinpoint the first diverging line for fast triage.
		gl, wl := strings.Split(got, "\n"), strings.Split(want, "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Fatalf("first diff at line %d:\n got: %q\nwant: %q", i+1, gl[i], wl[i])
			}
		}
	}
}

func TestSnapshotAndMerge(t *testing.T) {
	clock, advance := fixedClock(time.Unix(1700000000, 0))
	a := NewRegistryAt("n1", clock)
	b := NewRegistryAt("n2", clock)
	advance(10 * time.Second)

	a.Class("html").Requests.Add(4)
	a.Class("html").Latency.Observe(time.Millisecond)
	b.Class("html").Requests.Add(6)
	b.Class("html").Latency.Observe(3 * time.Millisecond)
	b.Class("cgi").Requests.Add(1)
	a.Counter("relay_errors_total").Add(2)
	b.Counter("relay_errors_total").Add(5)

	merged := MergeSnapshots(a.Snapshot(), b.Snapshot())
	if merged.Node != "cluster" {
		t.Fatalf("merged node = %q", merged.Node)
	}
	if got := merged.Classes["html"].Requests; got != 10 {
		t.Fatalf("merged html requests = %d, want 10", got)
	}
	if got := merged.Classes["html"].Latency.Count; got != 2 {
		t.Fatalf("merged html latency count = %d, want 2", got)
	}
	if got := merged.Counters["relay_errors_total"]; got != 7 {
		t.Fatalf("merged counter = %d, want 7", got)
	}

	stats := Summarize(a.Snapshot(), b.Snapshot())
	if len(stats.Sources) != 2 || stats.Sources[0] != "n1" || stats.Sources[1] != "n2" {
		t.Fatalf("sources = %v", stats.Sources)
	}
	var html *ClassSummary
	for i := range stats.Classes {
		if stats.Classes[i].Class == "html" {
			html = &stats.Classes[i]
		}
	}
	if html == nil {
		t.Fatal("no html class in summary")
	}
	if html.Requests != 10 {
		t.Fatalf("summary html requests = %d, want 10", html.Requests)
	}
	if html.RatePerSec != 1.0 {
		t.Fatalf("summary html rate = %v, want 1.0 (10 reqs / 10s)", html.RatePerSec)
	}
	if html.P99Ns < int64(3*time.Millisecond) {
		t.Fatalf("summary html p99 = %d, want >= 3ms", html.P99Ns)
	}
}
