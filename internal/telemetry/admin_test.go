package telemetry

import (
	"runtime"
	"strings"
	"testing"
)

// Close must not return while the serve goroutine is still running: the
// admin server previously leaked it past Close (found by leakcheck),
// which made shutdown racy — a scrape arriving between Close returning
// and Serve unwinding hit a half-torn-down server.
func TestAdminCloseJoinsServeGoroutine(t *testing.T) {
	tel := New(Options{Node: "front", RingSize: 16})
	admin := NewAdmin(tel)
	if _, err := admin.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := admin.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// The join must be synchronous — no grace period. Any Start.func1
	// frame still alive after Close returned is a regression.
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	if stacks := string(buf[:n]); strings.Contains(stacks, "(*AdminServer).Start.func") {
		t.Fatalf("serve goroutine still running after Close:\n%s", stacks)
	}
}
