package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"webcluster/internal/journal"
)

// Close must not return while the serve goroutine is still running: the
// admin server previously leaked it past Close (found by leakcheck),
// which made shutdown racy — a scrape arriving between Close returning
// and Serve unwinding hit a half-torn-down server.
func TestAdminCloseJoinsServeGoroutine(t *testing.T) {
	tel := New(Options{Node: "front", RingSize: 16})
	admin := NewAdmin(tel)
	if _, err := admin.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := admin.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// The join must be synchronous — no grace period. Any Start.func1
	// frame still alive after Close returned is a regression.
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	if stacks := string(buf[:n]); strings.Contains(stacks, "(*AdminServer).Start.func") {
		t.Fatalf("serve goroutine still running after Close:\n%s", stacks)
	}
}

// adminGet fetches path from the admin server and decodes the JSON body
// into out.
func adminGet(t *testing.T, addr, path string, out any) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, out); err != nil {
		t.Fatalf("GET %s: decoding %q: %v", path, body, err)
	}
}

// /debug/traces must present spans in start-time order. The span ring
// stores spans in *finish* order (newest finish first), so a long
// request that started before a short one used to appear after it —
// the regression this test pins.
func TestAdminTracesSortedByStartTime(t *testing.T) {
	now := time.Unix(1000, 0)
	tel := New(Options{Node: "front", RingSize: 16, Clock: func() time.Time { return now }})
	admin := NewAdmin(tel)
	addr, err := admin.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = admin.Close() }()

	long := tel.StartSpan(0) // starts first ...
	now = now.Add(10 * time.Millisecond)
	short := tel.StartSpan(0)
	now = now.Add(time.Millisecond)
	tel.FinishSpan(short)
	now = now.Add(time.Second)
	tel.FinishSpan(long) // ... finishes last, so the ring holds it newest

	var spans []Span
	adminGet(t, addr, "/debug/traces", &spans)
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].StartUnixNano < spans[i-1].StartUnixNano {
			t.Fatalf("spans out of start order: [%d]=%d after [%d]=%d",
				i, spans[i].StartUnixNano, i-1, spans[i-1].StartUnixNano)
		}
	}
}

func TestAdminJournalEndpoint(t *testing.T) {
	tel := New(Options{Node: "front", RingSize: 16})
	admin := NewAdmin(tel)
	addr, err := admin.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = admin.Close() }()

	// Without a journal the endpoint 404s rather than serving nothing.
	resp, err := http.Get("http://" + addr + "/debug/journal")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("no-journal status = %d, want 404", resp.StatusCode)
	}

	jnl := journal.New(journal.Options{Node: "front", Size: 64})
	for i := 0; i < 5; i++ {
		jnl.Record(journal.Event{Actor: journal.ActorController, Kind: journal.KindApply, A: int64(i)})
	}
	admin.SetJournal(jnl)

	var evs []journal.Event
	adminGet(t, addr, "/debug/journal", &evs)
	if len(evs) != 5 {
		t.Fatalf("events = %d, want 5", len(evs))
	}
	var tail []journal.Event
	adminGet(t, addr, "/debug/journal?since=3", &tail)
	if len(tail) != 2 || tail[0].Seq != 4 {
		t.Fatalf("since=3 events = %+v, want seq 4,5", tail)
	}
	var limited []journal.Event
	adminGet(t, addr, "/debug/journal?limit=2", &limited)
	if len(limited) != 2 || limited[0].A != 3 {
		t.Fatalf("limit=2 events = %+v, want newest two (A=3,4)", limited)
	}
}
