package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTelemetryIsInert(t *testing.T) {
	var tel *Telemetry
	sp := tel.StartSpan(7)
	if sp != nil {
		t.Fatal("nil telemetry returned a span")
	}
	// Every span method must be a no-op on nil.
	sp.MarkParse()
	sp.MarkRoute()
	sp.MarkCache()
	sp.MarkBackend()
	sp.MarkReply()
	sp.AdoptTrace(1)
	sp.SetRequest("GET", "/x")
	sp.SetClass("html")
	sp.SetStatus(200)
	sp.SetBytes(1)
	sp.SetCache("HIT")
	sp.SetBackend("n1", 2)
	sp.SetOutcome("ok")
	if sp.ID() != 0 {
		t.Fatal("nil span has nonzero ID")
	}
	tel.FinishSpan(sp)
	if tel.Registry() != nil {
		t.Fatal("nil telemetry returned a registry")
	}
}

func TestSpanLifecycle(t *testing.T) {
	clock, advance := fixedClock(time.Unix(1700000000, 0))
	tel := New(Options{Node: "front", Clock: clock, RingSize: 16})

	sp := tel.StartSpan(0)
	if sp == nil || sp.ID() == 0 || sp.TraceID == 0 {
		t.Fatalf("bad span: %+v", sp)
	}
	advance(2 * time.Millisecond)
	sp.MarkParse()
	sp.SetRequest("GET", "/docs/a.html")
	advance(1 * time.Millisecond)
	sp.MarkRoute()
	advance(5 * time.Millisecond)
	sp.MarkBackend()
	sp.SetBackend("n1", 99)
	advance(1 * time.Millisecond)
	sp.MarkReply()
	sp.SetClass("html")
	sp.SetStatus(200)
	sp.SetBytes(4096)
	sp.SetOutcome("relayed")
	tel.FinishSpan(sp)

	spans := tel.Spans(10)
	if len(spans) != 1 {
		t.Fatalf("ring holds %d spans, want 1", len(spans))
	}
	got := spans[0]
	if got.ParseNs != int64(2*time.Millisecond) ||
		got.RouteNs != int64(1*time.Millisecond) ||
		got.BackendNs != int64(5*time.Millisecond) ||
		got.ReplyNs != int64(1*time.Millisecond) {
		t.Fatalf("phase timings wrong: %+v", got)
	}
	if got.TotalNs != int64(9*time.Millisecond) {
		t.Fatalf("TotalNs = %d, want 9ms", got.TotalNs)
	}
	if got.Backend != "n1" || got.BackendSpan != 99 || got.Status != 200 || got.Class != "html" {
		t.Fatalf("span fields wrong: %+v", got)
	}
}

func TestAdoptTracePropagatesInboundID(t *testing.T) {
	tel := New(Options{Node: "front"})
	sp := tel.StartSpan(0)
	own := sp.TraceID
	sp.AdoptTrace(0xabcdef) // client supplied a trace ID after parse
	if sp.TraceID != 0xabcdef {
		t.Fatalf("AdoptTrace didn't take: %x", sp.TraceID)
	}
	if own == 0 {
		t.Fatal("fresh span had no trace ID before adoption")
	}
	tel.FinishSpan(sp)
}

func TestRingWrapsAndSnapshotsNewestFirst(t *testing.T) {
	tel := New(Options{Node: "front", RingSize: 16})
	for i := 0; i < 40; i++ {
		sp := tel.StartSpan(0)
		sp.SetRequest("GET", fmt.Sprintf("/f%d", i))
		tel.FinishSpan(sp)
	}
	spans := tel.Spans(0)
	if len(spans) != 16 {
		t.Fatalf("ring snapshot has %d spans, want 16 (ring size)", len(spans))
	}
	if spans[0].Path != "/f39" {
		t.Fatalf("newest span = %s, want /f39", spans[0].Path)
	}
	if limited := tel.Spans(4); len(limited) != 4 {
		t.Fatalf("limited snapshot has %d spans, want 4", len(limited))
	}
}

func TestRingConcurrentRecord(t *testing.T) {
	tel := New(Options{Node: "front", RingSize: 32})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				sp := tel.StartSpan(0)
				sp.SetRequest("GET", "/x")
				tel.FinishSpan(sp)
				if i%16 == 0 {
					_ = tel.Spans(8) // concurrent readers must see untorn copies
				}
			}
		}()
	}
	wg.Wait()
	for _, sp := range tel.Spans(0) {
		if sp.SpanID == 0 || sp.Path != "/x" {
			t.Fatalf("torn span in ring: %+v", sp)
		}
	}
}

func TestSlowLogThreshold(t *testing.T) {
	clock, advance := fixedClock(time.Unix(1700000000, 0))
	var buf strings.Builder
	tel := New(Options{
		Node: "front", Clock: clock,
		SlowThreshold: 10 * time.Millisecond, SlowLog: &buf,
	})
	fast := tel.StartSpan(0)
	advance(time.Millisecond)
	fast.MarkReply()
	tel.FinishSpan(fast)
	if buf.Len() != 0 {
		t.Fatalf("fast request logged: %q", buf.String())
	}
	slow := tel.StartSpan(0)
	slow.SetRequest("GET", "/big.bin")
	advance(50 * time.Millisecond)
	slow.MarkBackend()
	tel.FinishSpan(slow)
	line := buf.String()
	if !strings.Contains(line, "/big.bin") || !strings.Contains(line, "trace=") {
		t.Fatalf("slow log line missing fields: %q", line)
	}
}

func TestReportAndMergeSpans(t *testing.T) {
	clock, advance := fixedClock(time.Unix(1700000000, 0))
	tel := New(Options{Node: "front", Clock: clock, RingSize: 16})
	durs := []time.Duration{3, 9, 1, 7, 5}
	for i, d := range durs {
		sp := tel.StartSpan(0)
		sp.SetRequest("GET", fmt.Sprintf("/d%d", i))
		advance(d * time.Millisecond)
		sp.MarkReply()
		tel.FinishSpan(sp)
	}
	rep := tel.Report(3)
	if len(rep.Spans) != 3 {
		t.Fatalf("report has %d spans, want 3", len(rep.Spans))
	}
	if rep.Spans[0].TotalNs < rep.Spans[1].TotalNs || rep.Spans[1].TotalNs < rep.Spans[2].TotalNs {
		t.Fatalf("report spans not slowest-first: %v", rep.Spans)
	}
	if rep.Spans[0].TotalNs != int64(9*time.Millisecond) {
		t.Fatalf("slowest = %d, want 9ms", rep.Spans[0].TotalNs)
	}

	other := []Span{{Path: "/other", TotalNs: int64(8 * time.Millisecond)}}
	merged := MergeSpans(3, rep.Spans, other)
	if len(merged) != 3 {
		t.Fatalf("merged %d spans, want 3", len(merged))
	}
	if merged[1].Path != "/other" {
		t.Fatalf("merge order wrong: %v, want /other second", merged)
	}
}

func TestAdminEndpoints(t *testing.T) {
	tel := New(Options{Node: "front", RingSize: 16})
	tel.Registry().Class("html").Requests.Inc()
	sp := tel.StartSpan(0)
	sp.SetRequest("GET", "/a")
	tel.FinishSpan(sp)

	admin := NewAdmin(tel)
	addr, err := admin.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = admin.Close() }()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer func() { _ = resp.Body.Close() }()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, body := get("/metrics"); code != 200 ||
		!strings.Contains(body, `webcluster_class_requests_total{node="front",class="html"} 1`) {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	code, body := get("/debug/vars")
	if code != 200 {
		t.Fatalf("/debug/vars = %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if snap.Node != "front" {
		t.Fatalf("/debug/vars node = %q", snap.Node)
	}
	code, body = get("/debug/traces?limit=5")
	if code != 200 {
		t.Fatalf("/debug/traces = %d", code)
	}
	var spans []Span
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		t.Fatalf("/debug/traces not JSON: %v", err)
	}
	if len(spans) != 1 || spans[0].Path != "/a" {
		t.Fatalf("/debug/traces = %+v", spans)
	}
}
