package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"webcluster/internal/journal"
)

// AdminServer is the node-local observability endpoint: GET /metrics
// (Prometheus text exposition), /debug/vars (JSON registry snapshot),
// /debug/traces (recent spans oldest-first by start time, ?limit=N),
// /debug/journal (decision-journal events when a journal is attached,
// ?limit=N&since=SEQ), and /healthz. It serves read-only views —
// mutation stays on the management console.
type AdminServer struct {
	tel *Telemetry
	mux *http.ServeMux
	srv *http.Server
	ln  net.Listener
	// wg joins the serve goroutine so Close does not return while it is
	// still running (it previously leaked past Close).
	wg sync.WaitGroup

	jmu sync.Mutex
	jnl *journal.Journal
}

// NewAdmin builds an admin server over t.
func NewAdmin(t *Telemetry) *AdminServer {
	a := &AdminServer{tel: t, mux: http.NewServeMux()}
	a.mux.HandleFunc("/metrics", a.handleMetrics)
	a.mux.HandleFunc("/debug/vars", a.handleVars)
	a.mux.HandleFunc("/debug/traces", a.handleTraces)
	a.mux.HandleFunc("/debug/journal", a.handleJournal)
	a.mux.HandleFunc("/healthz", a.handleHealthz)
	return a
}

// SetJournal attaches the node's decision journal so /debug/journal
// serves it. May be called before or after Start; nil detaches.
func (a *AdminServer) SetJournal(j *journal.Journal) {
	a.jmu.Lock()
	a.jnl = j
	a.jmu.Unlock()
}

// Mux exposes the underlying mux so a command can mount extra handlers
// (the pprof index, for one) on the same listener.
func (a *AdminServer) Mux() *http.ServeMux { return a.mux }

// Start listens on addr and serves in the background; returns the bound
// address. Read/write timeouts bound every accepted connection so a
// wedged scraper can't pin a goroutine.
func (a *AdminServer) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	a.ln = ln
	a.srv = &http.Server{
		Handler:      a.mux,
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 30 * time.Second,
	}
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		_ = a.srv.Serve(ln)
	}()
	return ln.Addr().String(), nil
}

// Addr returns the bound address ("" before Start).
func (a *AdminServer) Addr() string {
	if a.ln == nil {
		return ""
	}
	return a.ln.Addr().String()
}

// Close stops the listener and any in-flight handlers, then waits for
// the serve goroutine to exit.
func (a *AdminServer) Close() error {
	if a.srv == nil {
		return nil
	}
	err := a.srv.Close()
	a.wg.Wait()
	return err
}

func (a *AdminServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = a.tel.Registry().WritePrometheus(w)
}

func (a *AdminServer) handleVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(a.tel.Registry().Snapshot())
}

func (a *AdminServer) handleTraces(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if s := r.URL.Query().Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		limit = n
	}
	// The span ring returns entries in ring order, which is arbitrary
	// once the ring has wrapped; sort by start time so readers see the
	// actual request chronology.
	spans := a.tel.Spans(limit)
	sort.SliceStable(spans, func(i, j int) bool {
		return spans[i].StartUnixNano < spans[j].StartUnixNano
	})
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(spans)
}

func (a *AdminServer) handleJournal(w http.ResponseWriter, r *http.Request) {
	a.jmu.Lock()
	jnl := a.jnl
	a.jmu.Unlock()
	if jnl == nil {
		http.Error(w, "no journal attached", http.StatusNotFound)
		return
	}
	limit := 0
	if s := r.URL.Query().Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		limit = n
	}
	var since uint64
	if s := r.URL.Query().Get("since"); s != "" {
		n, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			http.Error(w, "bad since", http.StatusBadRequest)
			return
		}
		since = n
	}
	var evs []journal.Event
	if since > 0 {
		evs = jnl.Since(since, limit)
	} else {
		evs = jnl.Snapshot(limit)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(evs)
}

func (a *AdminServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	_, _ = w.Write([]byte("ok\n"))
}
