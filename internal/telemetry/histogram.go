// Package telemetry is the live observability layer: lock-free metrics
// (atomic log-linear histograms, counters, gauges) aggregated per request
// class, request-scoped spans pooled and captured into a fixed-size ring,
// a Prometheus/JSON exposition registry, and an admin HTTP listener. The
// management plane scrapes per-node snapshots and merges them into the
// single-system-image cluster view (DESIGN.md §11).
//
// Everything on the request path is allocation-free and lock-free:
// histograms are fixed preallocated atomic bucket arrays, class lookup is
// a copy-on-write map read, spans come from a sync.Pool and are copied by
// value into the ring. bench_test.go's BenchmarkDistributorRelayTraced
// holds the layer to zero allocs/op over the untraced relay.
package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Log-linear (HDR-style) bucket layout: values 0..2^subBits-1 land in
// exact unit buckets; above that each power-of-two octave is split into
// 2^subBits linear sub-buckets, giving a bounded ~3% relative error at
// every magnitude with a fixed, preallocated bucket array.
const (
	subBits    = 5
	subCount   = 1 << subBits
	subMask    = subCount - 1
	numBuckets = (64 - subBits + 1) << subBits // exact range + 59 octaves
)

// bucketIndex maps a non-negative value (nanoseconds) to its bucket.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < subCount {
		return int(u)
	}
	e := bits.Len64(u) - 1 // e >= subBits
	sub := (u >> (uint(e) - subBits)) & subMask
	return int((uint(e-subBits+1) << subBits) | uint(sub))
}

// bucketBound returns the largest value that maps to bucket i (quantile
// estimates use the upper bound, so they never understate).
func bucketBound(i int) int64 {
	if i < subCount {
		return int64(i)
	}
	e := uint(i>>subBits) + subBits - 1
	sub := uint64(i & subMask)
	lower := uint64(1)<<e | sub<<(e-subBits)
	width := uint64(1) << (e - subBits)
	return int64(lower + width - 1)
}

// Histogram is a fixed-size atomic log-linear latency histogram. Observe
// is lock-free and allocation-free; snapshots are mergeable by
// construction (bucket layouts are identical everywhere), which is what
// lets the controller aggregate per-node histograms into one cluster-wide
// distribution. The zero value is ready to use.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [numBuckets]atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveNs(int64(d)) }

// ObserveNs records one duration given in nanoseconds.
func (h *Histogram) ObserveNs(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Mean returns the arithmetic mean, or 0 with no observations.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket counts,
// or 0 with no observations. Concurrent observers may skew a racing read
// by a few samples; statistics reads tolerate that.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := rankFor(q, total)
	var cum int64
	for i := 0; i < numBuckets; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		if cum >= target {
			return time.Duration(bucketBound(i))
		}
	}
	return time.Duration(bucketBound(numBuckets - 1))
}

// rankFor converts a quantile into a nearest-rank target count.
func rankFor(q float64, total int64) int64 {
	if q <= 0 {
		return 1
	}
	if q >= 1 {
		return total
	}
	target := int64(q*float64(total) + 0.9999999)
	if target < 1 {
		target = 1
	}
	if target > total {
		target = total
	}
	return target
}

// Reset zeroes every bucket (management/test use; not atomic with respect
// to concurrent observers).
func (h *Histogram) Reset() {
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// Bucket is one non-empty histogram bucket in a snapshot.
type Bucket struct {
	// Index identifies the bucket in the shared log-linear layout.
	Index int `json:"i"`
	// Count is the number of observations in the bucket.
	Count int64 `json:"n"`
}

// HistSnapshot is a point-in-time, JSON-encodable copy of a histogram.
// Buckets are sparse (non-empty only) and index-sorted. Snapshots taken
// from any Histogram share the bucket layout, so Merge is elementwise
// addition — the property the single-system-image stats plane relies on.
type HistSnapshot struct {
	Count   int64    `json:"count"`
	SumNs   int64    `json:"sumNs"`
	MaxNs   int64    `json:"maxNs"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Count: h.count.Load(),
		SumNs: h.sum.Load(),
		MaxNs: h.max.Load(),
	}
	for i := 0; i < numBuckets; i++ {
		if c := h.buckets[i].Load(); c > 0 {
			s.Buckets = append(s.Buckets, Bucket{Index: i, Count: c})
		}
	}
	return s
}

// Merge adds o into s (both bucket lists are index-sorted; the result is
// too).
func (s *HistSnapshot) Merge(o HistSnapshot) {
	s.Count += o.Count
	s.SumNs += o.SumNs
	if o.MaxNs > s.MaxNs {
		s.MaxNs = o.MaxNs
	}
	if len(o.Buckets) == 0 {
		return
	}
	merged := make([]Bucket, 0, len(s.Buckets)+len(o.Buckets))
	i, j := 0, 0
	for i < len(s.Buckets) || j < len(o.Buckets) {
		switch {
		case j >= len(o.Buckets) || (i < len(s.Buckets) && s.Buckets[i].Index < o.Buckets[j].Index):
			merged = append(merged, s.Buckets[i])
			i++
		case i >= len(s.Buckets) || o.Buckets[j].Index < s.Buckets[i].Index:
			merged = append(merged, o.Buckets[j])
			j++
		default:
			merged = append(merged, Bucket{Index: s.Buckets[i].Index, Count: s.Buckets[i].Count + o.Buckets[j].Count})
			i++
			j++
		}
	}
	s.Buckets = merged
}

// Mean returns the snapshot's arithmetic mean.
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNs / s.Count)
}

// Quantile estimates the q-quantile from the snapshot's buckets.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	target := rankFor(q, s.Count)
	var cum int64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= target {
			return time.Duration(bucketBound(b.Index))
		}
	}
	if n := len(s.Buckets); n > 0 {
		return time.Duration(bucketBound(s.Buckets[n-1].Index))
	}
	return 0
}
