package telemetry

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures a node's telemetry layer.
type Options struct {
	// Node labels every metric sample and span with the owning node.
	Node string
	// RingSize is the span ring capacity (rounded up to a power of two;
	// default 256).
	RingSize int
	// SlowThreshold triggers the slow-request log for spans at or above
	// this total duration; zero disables the log.
	SlowThreshold time.Duration
	// SlowLog receives one line per slow request. Nil disables the log
	// even with a threshold set.
	SlowLog io.Writer
	// Clock overrides time.Now (tests pin it for deterministic spans).
	Clock func() time.Time
}

// Telemetry bundles a node's live observability state: the metrics
// registry, the span ring, the slow-request log, and the span ID source.
// A nil *Telemetry is a valid "tracing off" value — StartSpan returns a
// nil span and every span method is a no-op — so the distributor's
// untraced configuration pays one branch, not an interface call.
type Telemetry struct {
	node    string
	clock   func() time.Time
	reg     *Registry
	ring    *SpanRing
	slowNs  int64
	slowMu  sync.Mutex
	slowLog io.Writer
	seed    uint64
	idc     atomic.Uint64
}

// New builds a telemetry layer from o.
func New(o Options) *Telemetry {
	clock := o.Clock
	if clock == nil {
		clock = time.Now
	}
	ringSize := o.RingSize
	if ringSize <= 0 {
		ringSize = 256
	}
	t := &Telemetry{
		node:    o.Node,
		clock:   clock,
		reg:     NewRegistryAt(o.Node, clock),
		ring:    NewSpanRing(ringSize),
		slowLog: o.SlowLog,
		seed:    uint64(clock().UnixNano()),
	}
	if o.SlowLog != nil && o.SlowThreshold > 0 {
		t.slowNs = int64(o.SlowThreshold)
	}
	return t
}

// Node returns the node label ("" on nil).
func (t *Telemetry) Node() string {
	if t == nil {
		return ""
	}
	return t.node
}

// Registry returns the node's metrics registry (nil on nil telemetry).
func (t *Telemetry) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// nextID returns a non-zero well-distributed 64-bit ID.
func (t *Telemetry) nextID() uint64 {
	id := splitmix64(t.seed + t.idc.Add(1))
	if id == 0 {
		id = 1
	}
	return id
}

// StartSpan begins a request span, drawing from the span pool. traceID
// carries an inbound X-Dist-Trace value to adopt; zero assigns a fresh
// trace ID. Returns nil (a valid no-op span) when t is nil. The caller
// must pass the span to FinishSpan exactly once.
func (t *Telemetry) StartSpan(traceID uint64) *Span {
	if t == nil {
		return nil
	}
	sp := spanPool.Get().(*Span)
	sp.reset()
	if traceID == 0 {
		traceID = t.nextID()
	}
	sp.TraceID = traceID
	sp.SpanID = t.nextID()
	sp.Node = t.node
	sp.clock = t.clock
	now := t.clock()
	sp.begin = now
	sp.last = now
	return sp
}

// FinishSpan closes the span: stamps the total duration, copies it into
// the ring, emits a slow-log line past the threshold, and recycles the
// span. sp must not be used afterwards. Nil t or sp is a no-op.
func (t *Telemetry) FinishSpan(sp *Span) {
	if t == nil || sp == nil {
		return
	}
	sp.StartUnixNano = sp.begin.UnixNano()
	sp.TotalNs = int64(t.clock().Sub(sp.begin))
	t.ring.record(sp)
	if t.slowNs > 0 && sp.TotalNs >= t.slowNs {
		t.logSlow(sp)
	}
	sp.reset()
	spanPool.Put(sp)
}

// logSlow writes one human-readable line for a span past the slow
// threshold. Rare by construction, so the formatting allocations are
// acceptable.
func (t *Telemetry) logSlow(sp *Span) {
	t.slowMu.Lock()
	defer t.slowMu.Unlock()
	fmt.Fprintf(t.slowLog,
		"slow request trace=%016x node=%s %s %s class=%s status=%d total=%v parse=%v route=%v cache=%v backend=%v reply=%v via=%s\n",
		sp.TraceID, sp.Node, sp.Method, sp.Path, sp.Class, sp.Status,
		time.Duration(sp.TotalNs), time.Duration(sp.ParseNs), time.Duration(sp.RouteNs),
		time.Duration(sp.CacheNs), time.Duration(sp.BackendNs), time.Duration(sp.ReplyNs),
		sp.Backend)
}

// Spans returns up to limit recent spans, newest first (nil telemetry
// returns nil).
func (t *Telemetry) Spans(limit int) []Span {
	if t == nil {
		return nil
	}
	return t.ring.Snapshot(limit)
}

// Report is the unit the management plane scrapes from a node: a full
// metrics snapshot plus the slowest recent spans.
type Report struct {
	Snapshot Snapshot `json:"snapshot"`
	Spans    []Span   `json:"spans,omitempty"`
}

// Report captures a scrape-ready view: the registry snapshot and the
// maxSpans slowest spans currently in the ring.
func (t *Telemetry) Report(maxSpans int) Report {
	if t == nil {
		return Report{}
	}
	spans := t.ring.Snapshot(0)
	sortSpansBySlowest(spans)
	if maxSpans > 0 && len(spans) > maxSpans {
		spans = spans[:maxSpans]
	}
	return Report{Snapshot: t.reg.Snapshot(), Spans: spans}
}

// sortSpansBySlowest orders spans by descending total duration.
func sortSpansBySlowest(spans []Span) {
	// Insertion sort: rings are small (<=1024) and scrapes are rare.
	for i := 1; i < len(spans); i++ {
		for j := i; j > 0 && spans[j].TotalNs > spans[j-1].TotalNs; j-- {
			spans[j], spans[j-1] = spans[j-1], spans[j]
		}
	}
}

// MergeSpans interleaves per-node span lists into one slowest-first list
// capped at limit (<=0 means no cap) — the console's cluster-wide traces
// view.
func MergeSpans(limit int, lists ...[]Span) []Span {
	var all []Span
	for _, l := range lists {
		all = append(all, l...)
	}
	sortSpansBySlowest(all)
	if limit > 0 && len(all) > limit {
		all = all[:limit]
	}
	return all
}
