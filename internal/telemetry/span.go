package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Span is one request's timing breakdown through the distributor: parse →
// route → cache → backend → reply. Spans are pooled — the distributor
// obtains one from StartSpan, threads it through the relay, and returns
// it via FinishSpan, which copies it by value into the ring and recycles
// the allocation. All mutating methods are nil-receiver safe so untraced
// paths (nil telemetry) cost a single predictable branch.
//
// Phase fields accumulate (+=) rather than assign, so a retried backend
// exchange charges both attempts to BackendNs.
type Span struct {
	TraceID uint64 `json:"traceId"`
	SpanID  uint64 `json:"spanId"`
	Node    string `json:"node"`
	Method  string `json:"method,omitempty"`
	Path    string `json:"path,omitempty"`
	Class   string `json:"class,omitempty"`
	Status  int    `json:"status,omitempty"`
	Bytes   int64  `json:"bytes,omitempty"`
	// Cache is the cache verdict ("hit", "miss", "stale", ...), empty when
	// the response cache was not consulted.
	Cache string `json:"cache,omitempty"`
	// Backend is the node that served the request; BackendSpan is the span
	// ID the backend echoed on the X-Dist-Span response header.
	Backend     string `json:"backend,omitempty"`
	BackendSpan uint64 `json:"backendSpan,omitempty"`
	// Outcome classifies how the request ended: "relayed", "cached",
	// "no-route", "no-replica", "bad-gateway", "parse-error".
	Outcome string `json:"outcome,omitempty"`

	StartUnixNano int64 `json:"startUnixNano"`
	ParseNs       int64 `json:"parseNs,omitempty"`
	RouteNs       int64 `json:"routeNs,omitempty"`
	CacheNs       int64 `json:"cacheNs,omitempty"`
	BackendNs     int64 `json:"backendNs,omitempty"`
	ReplyNs       int64 `json:"replyNs,omitempty"`
	TotalNs       int64 `json:"totalNs"`

	clock func() time.Time
	begin time.Time
	last  time.Time
}

func (s *Span) reset() {
	*s = Span{}
}

// advance returns nanoseconds since the previous phase mark and moves the
// mark to now.
func (s *Span) advance() int64 {
	now := s.clock()
	d := now.Sub(s.last)
	s.last = now
	return int64(d)
}

// MarkParse charges time since the span started to the parse phase.
func (s *Span) MarkParse() {
	if s == nil {
		return
	}
	s.ParseNs += s.advance()
}

// MarkRoute charges elapsed time to URL-table routing + replica choice.
func (s *Span) MarkRoute() {
	if s == nil {
		return
	}
	s.RouteNs += s.advance()
}

// MarkCache charges elapsed time to the response-cache lookup.
func (s *Span) MarkCache() {
	if s == nil {
		return
	}
	s.CacheNs += s.advance()
}

// MarkBackend charges elapsed time to the backend dial/exchange.
func (s *Span) MarkBackend() {
	if s == nil {
		return
	}
	s.BackendNs += s.advance()
}

// MarkReply charges elapsed time to writing the reply to the client.
func (s *Span) MarkReply() {
	if s == nil {
		return
	}
	s.ReplyNs += s.advance()
}

// AdoptTrace replaces the span's assigned trace ID with an inbound
// in-band one (no-op when traceID is zero or the span is nil).
func (s *Span) AdoptTrace(traceID uint64) {
	if s == nil || traceID == 0 {
		return
	}
	s.TraceID = traceID
}

// SetRequest records the request line.
func (s *Span) SetRequest(method, path string) {
	if s == nil {
		return
	}
	s.Method, s.Path = method, path
}

// SetClass records the content class the request resolved to.
func (s *Span) SetClass(class string) {
	if s == nil {
		return
	}
	s.Class = class
}

// SetStatus records the response status code.
func (s *Span) SetStatus(code int) {
	if s == nil {
		return
	}
	s.Status = code
}

// SetBytes records body bytes delivered to the client.
func (s *Span) SetBytes(n int64) {
	if s == nil {
		return
	}
	s.Bytes = n
}

// SetCache records the cache verdict.
func (s *Span) SetCache(state string) {
	if s == nil {
		return
	}
	s.Cache = state
}

// SetBackend records the serving node and its echoed span ID.
func (s *Span) SetBackend(node string, spanID uint64) {
	if s == nil {
		return
	}
	s.Backend, s.BackendSpan = node, spanID
}

// SetOutcome classifies how the request ended.
func (s *Span) SetOutcome(outcome string) {
	if s == nil {
		return
	}
	s.Outcome = outcome
}

// ID returns the span's trace ID (0 on a nil span), for stamping onto the
// forwarded request.
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.TraceID
}

var spanPool = sync.Pool{New: func() any { return new(Span) }}

// SpanRing is a fixed-size lock-striped ring of completed spans. Writers
// claim a slot with one atomic increment and copy the span in under that
// slot's mutex; a concurrent Snapshot copies out under the same mutex, so
// readers never observe a torn span. Capacity rounds up to a power of
// two.
type SpanRing struct {
	mask  uint64
	seq   atomic.Uint64
	slots []ringSlot
}

type ringSlot struct {
	mu   sync.Mutex
	used bool
	span Span
}

// NewSpanRing returns a ring holding the most recent n spans (rounded up
// to a power of two, minimum 16).
func NewSpanRing(n int) *SpanRing {
	size := 16
	for size < n {
		size <<= 1
	}
	return &SpanRing{mask: uint64(size - 1), slots: make([]ringSlot, size)}
}

// record copies sp by value into the next slot.
func (r *SpanRing) record(sp *Span) {
	i := (r.seq.Add(1) - 1) & r.mask
	slot := &r.slots[i]
	slot.mu.Lock()
	slot.span = *sp
	slot.span.clock = nil
	slot.used = true
	slot.mu.Unlock()
}

// Snapshot returns up to limit captured spans, newest first (limit <= 0
// means all).
func (r *SpanRing) Snapshot(limit int) []Span {
	n := len(r.slots)
	if limit <= 0 || limit > n {
		limit = n
	}
	out := make([]Span, 0, limit)
	seq := r.seq.Load()
	for k := 0; k < n && len(out) < limit; k++ {
		i := (seq - 1 - uint64(k)) & r.mask
		slot := &r.slots[i]
		slot.mu.Lock()
		if slot.used {
			out = append(out, slot.span)
		}
		slot.mu.Unlock()
	}
	return out
}

// splitmix64 is the SplitMix64 output function — one multiply-xor-shift
// chain turning a sequential counter into well-distributed span IDs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
