package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"webcluster/internal/content"
	"webcluster/internal/workload"
)

func sampleEntry() Entry {
	return Entry{
		ClientIP: "10.1.2.3",
		Time:     time.Date(2000, 4, 4, 12, 30, 45, 0, time.UTC),
		Method:   "GET",
		Path:     "/docs/a.html",
		Proto:    "HTTP/1.0",
		Status:   200,
		Bytes:    4096,
	}
}

func TestEntryStringFormat(t *testing.T) {
	line := sampleEntry().String()
	want := `10.1.2.3 - - [04/Apr/2000:12:30:45 +0000] "GET /docs/a.html HTTP/1.0" 200 4096`
	if line != want {
		t.Fatalf("line = %q\nwant  %q", line, want)
	}
}

func TestParseLineRoundTrip(t *testing.T) {
	orig := sampleEntry()
	got, err := ParseLine(orig.String())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Time.Equal(orig.Time) {
		t.Fatalf("time = %v, want %v", got.Time, orig.Time)
	}
	got.Time = orig.Time // zone representation may differ; compare rest
	if got.ClientIP != orig.ClientIP || got.Path != orig.Path ||
		got.Status != orig.Status || got.Bytes != orig.Bytes ||
		got.Method != orig.Method || got.Proto != orig.Proto {
		t.Fatalf("round trip: %+v vs %+v", got, orig)
	}
}

func TestParseLineApacheExample(t *testing.T) {
	line := `127.0.0.1 frank bob [10/Oct/2000:13:55:36 -0700] "GET /apache_pb.gif HTTP/1.0" 200 2326`
	e, err := ParseLine(line)
	if err != nil {
		t.Fatal(err)
	}
	if e.ClientIP != "127.0.0.1" || e.Path != "/apache_pb.gif" || e.Bytes != 2326 {
		t.Fatalf("entry = %+v", e)
	}
}

func TestParseLineDashBytes(t *testing.T) {
	line := `1.2.3.4 - - [10/Oct/2000:13:55:36 -0700] "GET / HTTP/1.0" 304 -`
	e, err := ParseLine(line)
	if err != nil {
		t.Fatal(err)
	}
	if e.Bytes != 0 || e.Status != 304 {
		t.Fatalf("entry = %+v", e)
	}
}

func TestParseLineMalformed(t *testing.T) {
	bad := []string{
		"",
		"no brackets at all",
		`1.2.3.4 - - [not-a-time] "GET / HTTP/1.0" 200 1`,
		`1.2.3.4 - - [10/Oct/2000:13:55:36 -0700] GET / 200 1`,
		`1.2.3.4 - - [10/Oct/2000:13:55:36 -0700] "GET /" 200 1`,
		`1.2.3.4 - - [10/Oct/2000:13:55:36 -0700] "GET / HTTP/1.0" abc 1`,
		`1.2.3.4 - - [10/Oct/2000:13:55:36 -0700] "GET / HTTP/1.0"`,
	}
	for _, line := range bad {
		if _, err := ParseLine(line); !errors.Is(err, ErrMalformedLine) {
			t.Errorf("ParseLine(%q) err = %v", line, err)
		}
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	entries := []Entry{sampleEntry(), sampleEntry()}
	entries[1].Path = "/other.gif"
	entries[1].Time = entries[1].Time.Add(time.Second)
	var buf bytes.Buffer
	if err := Write(&buf, entries); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].Path != "/other.gif" {
		t.Fatalf("read back %+v", got)
	}
}

func TestReadSkipsBlankLines(t *testing.T) {
	raw := sampleEntry().String() + "\n\n" + sampleEntry().String() + "\n"
	got, err := Read(strings.NewReader(raw))
	if err != nil || len(got) != 2 {
		t.Fatalf("got %d entries, %v", len(got), err)
	}
}

func TestReadReportsLineNumber(t *testing.T) {
	raw := sampleEntry().String() + "\ngarbage line\n"
	_, err := Read(strings.NewReader(raw))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v", err)
	}
}

func testSite(t *testing.T) *content.Site {
	t.Helper()
	site, err := content.GenerateSite(content.GenParams{
		Objects:         60,
		Seed:            3,
		MeanStaticBytes: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	return site
}

func TestSynthesize(t *testing.T) {
	site := testSite(t)
	gen, err := workload.NewGenerator(site, workload.DefaultZipfS, 1)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)
	entries := Synthesize(gen, 500, start, 200, 7)
	if len(entries) != 500 {
		t.Fatalf("entries = %d", len(entries))
	}
	prev := start
	for i, e := range entries {
		if e.Time.Before(prev) {
			t.Fatalf("entry %d time went backwards", i)
		}
		prev = e.Time
		if _, ok := site.Lookup(e.Path); !ok {
			t.Fatalf("entry %d path %s not in site", i, e.Path)
		}
	}
	// ~200 req/s for 500 requests ≈ 2.5 s span.
	span := entries[len(entries)-1].Time.Sub(start)
	if span < time.Second || span > 10*time.Second {
		t.Fatalf("trace span = %v", span)
	}
}

// TestPropertySynthesizeDeterministic: identical inputs give identical
// traces.
func TestPropertySynthesizeDeterministic(t *testing.T) {
	site := testSite(t)
	f := func(seed int64) bool {
		g1, err := workload.NewGenerator(site, workload.DefaultZipfS, seed)
		if err != nil {
			return false
		}
		g2, err := workload.NewGenerator(site, workload.DefaultZipfS, seed)
		if err != nil {
			return false
		}
		start := time.Unix(1e9, 0).UTC()
		a := Synthesize(g1, 50, start, 100, seed)
		b := Synthesize(g2, 50, start, 100, seed)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
