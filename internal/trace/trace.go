// Package trace records and replays web access logs in Common Log Format.
//
// The paper's §5.2 numbers come from "our Web site running the proposed
// system" — live production traffic. This reproduction cannot ship those
// traces, so it provides the equivalent machinery instead: the distributor
// writes a CLF access log, and a replayer drives a cluster from any CLF
// log (recorded here or imported), preserving request order and, at
// reduced speed factors, inter-arrival spacing. Synthetic logs generated
// from the workload model stand in for the production trace.
package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"strconv"
	"strings"
	"time"

	"webcluster/internal/faults"
	"webcluster/internal/httpx"
	"webcluster/internal/workload"
)

// clfTime is the Common Log Format timestamp layout.
const clfTime = "02/Jan/2006:15:04:05 -0700"

// Entry is one access-log line.
type Entry struct {
	ClientIP string
	Time     time.Time
	Method   string
	Path     string
	Proto    string
	Status   int
	Bytes    int64
}

// String formats the entry as a CLF line ("host - - [time] \"req\" status bytes").
func (e Entry) String() string {
	return fmt.Sprintf("%s - - [%s] %q %d %d",
		e.ClientIP,
		e.Time.Format(clfTime),
		e.Method+" "+e.Path+" "+e.Proto,
		e.Status,
		e.Bytes,
	)
}

// ErrMalformedLine reports an unparsable log line.
var ErrMalformedLine = errors.New("trace: malformed log line")

// ParseLine parses one CLF line.
func ParseLine(line string) (Entry, error) {
	// host ident user [time] "request" status bytes
	openBracket := strings.IndexByte(line, '[')
	closeBracket := strings.IndexByte(line, ']')
	if openBracket < 0 || closeBracket < openBracket {
		return Entry{}, fmt.Errorf("%w: no timestamp in %q", ErrMalformedLine, line)
	}
	host := strings.Fields(line[:openBracket])
	if len(host) < 1 {
		return Entry{}, fmt.Errorf("%w: no host in %q", ErrMalformedLine, line)
	}
	ts, err := time.Parse(clfTime, line[openBracket+1:closeBracket])
	if err != nil {
		return Entry{}, fmt.Errorf("%w: %v", ErrMalformedLine, err)
	}
	rest := strings.TrimSpace(line[closeBracket+1:])
	if len(rest) == 0 || rest[0] != '"' {
		return Entry{}, fmt.Errorf("%w: no request in %q", ErrMalformedLine, line)
	}
	endQuote := strings.IndexByte(rest[1:], '"')
	if endQuote < 0 {
		return Entry{}, fmt.Errorf("%w: unterminated request in %q", ErrMalformedLine, line)
	}
	reqLine := rest[1 : 1+endQuote]
	parts := strings.Fields(reqLine)
	if len(parts) != 3 {
		return Entry{}, fmt.Errorf("%w: request line %q", ErrMalformedLine, reqLine)
	}
	tail := strings.Fields(rest[endQuote+2:])
	if len(tail) < 2 {
		return Entry{}, fmt.Errorf("%w: missing status/bytes in %q", ErrMalformedLine, line)
	}
	status, err := strconv.Atoi(tail[0])
	if err != nil {
		return Entry{}, fmt.Errorf("%w: status %q", ErrMalformedLine, tail[0])
	}
	var bytes int64
	if tail[1] != "-" {
		bytes, err = strconv.ParseInt(tail[1], 10, 64)
		if err != nil {
			return Entry{}, fmt.Errorf("%w: bytes %q", ErrMalformedLine, tail[1])
		}
	}
	return Entry{
		ClientIP: host[0],
		Time:     ts,
		Method:   parts[0],
		Path:     parts[1],
		Proto:    parts[2],
		Status:   status,
		Bytes:    bytes,
	}, nil
}

// Read parses a whole log stream, skipping blank lines.
func Read(r io.Reader) ([]Entry, error) {
	var entries []Entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		e, err := ParseLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading log: %w", err)
	}
	return entries, nil
}

// Write emits entries as CLF lines.
func Write(w io.Writer, entries []Entry) error {
	bw := bufio.NewWriter(w)
	for _, e := range entries {
		if _, err := fmt.Fprintln(bw, e.String()); err != nil {
			return fmt.Errorf("trace: writing log: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: flushing log: %w", err)
	}
	return nil
}

// Synthesize generates a CLF trace from the workload model: count requests
// drawn Zipf-style over site, with exponential inter-arrivals at the given
// mean rate. It stands in for a production access log.
func Synthesize(gen *workload.Generator, count int, start time.Time, ratePerSec float64, seed int64) []Entry {
	if ratePerSec <= 0 {
		ratePerSec = 100
	}
	entries := make([]Entry, 0, count)
	t := start
	// Deterministic pseudo-exponential gaps from a simple LCG so the
	// trace depends only on (gen, seed).
	state := uint64(seed)*6364136223846793005 + 1442695040888963407
	for i := 0; i < count; i++ {
		obj := gen.Next()
		state = state*6364136223846793005 + 1442695040888963407
		u := float64(state>>11) / float64(1<<53)
		if u <= 0 {
			u = 0.5
		}
		gap := -1.0 / ratePerSec * math.Log(u)
		t = t.Add(time.Duration(gap * float64(time.Second)))
		entries = append(entries, Entry{
			ClientIP: fmt.Sprintf("10.0.%d.%d", (i/251)%251+1, i%251+1),
			Time:     t,
			Method:   "GET",
			Path:     obj.Path,
			Proto:    "HTTP/1.0",
			Status:   200,
			Bytes:    obj.Size,
		})
	}
	return entries
}

// ReplayOptions configures trace replay against a live front end.
type ReplayOptions struct {
	// Addr is the front end.
	Addr string
	// Speedup divides recorded inter-arrival gaps (0 = as fast as
	// possible, ignoring timestamps).
	Speedup float64
	// Concurrency bounds in-flight requests in as-fast-as-possible mode.
	Concurrency int
	// Timeout bounds each request round trip (write + read). A wedged
	// front end surfaces as a counted error, not a hung replay worker.
	// Defaults to 5s.
	Timeout time.Duration
	// Faults, when non-nil, gates replay dials (point "replay.dial") and
	// wraps connections (point "replay.conn") so chaos runs can exercise
	// the replayer's own failure handling.
	Faults *faults.Injector
}

// ReplayReport summarizes a replay.
type ReplayReport struct {
	Requests int64
	Errors   int64
	Elapsed  time.Duration
	// StatusMismatches counts responses whose status differed from the
	// recorded one (e.g. content no longer placed).
	StatusMismatches int64
}

// Replay sends every entry's request to the front end in order and
// compares response status against the recording.
func Replay(entries []Entry, opts ReplayOptions) (ReplayReport, error) {
	if opts.Addr == "" {
		return ReplayReport{}, errors.New("trace: no address")
	}
	concurrency := opts.Concurrency
	if concurrency <= 0 {
		concurrency = 8
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	injector := opts.Faults
	start := time.Now()
	var report ReplayReport

	type job struct {
		e Entry
	}
	jobs := make(chan job)
	results := make(chan [2]int64, concurrency) // {error, mismatch}
	for w := 0; w < concurrency; w++ {
		go func() {
			var conn net.Conn
			var br *bufio.Reader
			defer func() {
				if conn != nil {
					_ = conn.Close()
				}
			}()
			for j := range jobs {
				var errC, misC int64
				if conn == nil {
					if ferr := injector.Fail("replay.dial"); ferr != nil {
						results <- [2]int64{1, 0}
						continue
					}
					c, err := net.DialTimeout("tcp", opts.Addr, timeout)
					if err != nil {
						results <- [2]int64{1, 0}
						continue
					}
					conn = injector.Conn("replay.conn", c)
					br = bufio.NewReader(conn)
				}
				req := &httpx.Request{
					Method: j.e.Method, Target: j.e.Path, Path: j.e.Path,
					Proto: httpx.Proto11, Header: httpx.NewHeader("Host", "replay"),
				}
				// Per-request deadline: one slow response must not wedge
				// the worker (and the whole replay) indefinitely.
				err := conn.SetDeadline(time.Now().Add(timeout))
				if err == nil {
					err = httpx.WriteRequest(conn, req)
				}
				var resp *httpx.Response
				if err == nil {
					resp, err = httpx.ReadResponse(br)
				}
				if err != nil {
					errC = 1
					_ = conn.Close()
					conn, br = nil, nil
				} else {
					if resp.StatusCode != j.e.Status {
						misC = 1
					}
					if !resp.KeepAlive() {
						_ = conn.Close()
						conn, br = nil, nil
					}
				}
				results <- [2]int64{errC, misC}
			}
		}()
	}

	go func() {
		var prev time.Time
		for _, e := range entries {
			if opts.Speedup > 0 && !prev.IsZero() {
				gap := e.Time.Sub(prev)
				if gap > 0 {
					time.Sleep(time.Duration(float64(gap) / opts.Speedup))
				}
			}
			prev = e.Time
			jobs <- job{e: e}
		}
		close(jobs)
	}()

	for range entries {
		r := <-results
		report.Requests++
		report.Errors += r[0]
		report.StatusMismatches += r[1]
	}
	report.Elapsed = time.Since(start)
	return report, nil
}
