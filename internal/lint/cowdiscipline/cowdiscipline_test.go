package cowdiscipline_test

import (
	"testing"

	"webcluster/internal/lint/cowdiscipline"
	"webcluster/internal/lint/linttest"
)

func TestCOWDiscipline(t *testing.T) {
	linttest.Run(t, "testdata/a", cowdiscipline.Analyzer)
}
