package cowdiscipline_test

import (
	"testing"

	"webcluster/internal/lint/cowdiscipline"
	"webcluster/internal/lint/linttest"
)

func TestCOWDiscipline(t *testing.T) {
	linttest.Run(t, "testdata/a", cowdiscipline.Analyzer)
}

// TestCOWDisciplineCrossPackage pins the CowTypesFact upgrade: the
// distlint:cow doc marker declared in testdata/shared is enforced in a
// downstream package via the exported package fact.
func TestCOWDisciplineCrossPackage(t *testing.T) {
	linttest.RunDirs(t, cowdiscipline.Analyzer, "testdata/shared", "testdata/e")
}
