// Cross-package fixture for cowdiscipline: shared.Entry's distlint:cow
// marker is a doc comment in the helper package, invisible to the
// pre-v2 engine from here — it collected markers only from the syntax
// of the package being analyzed, so the write below was provably
// unreportable. v2 imports the CowTypesFact the shared package exports.
package fixture

import "webcluster/internal/lint/cowdiscipline/testdata/shared"

// --- flagged ---

func badBump(e *shared.Entry) {
	e.Hits++ // want `assignment through copy-on-write value "e"`
}

func badTruncate(e *shared.Entry) {
	e.Body = nil // want `assignment through copy-on-write value "e"`
}

// --- allowed ---

// cloneEntry is a sanctioned mutation site: clone helpers operate on
// fresh copies by contract.
func cloneEntry(e *shared.Entry) *shared.Entry {
	c := *e
	c.Hits = 0
	return &c
}

func readOnly(e *shared.Entry) int {
	return e.Hits + len(e.Body)
}
