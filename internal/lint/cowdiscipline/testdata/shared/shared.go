// Package shared is the helper side of the cowdiscipline cross-package
// fixture: Entry's distlint:cow marker lives in this package's doc
// comments, which only this package's syntax contains. Pre-v2 the
// analyzer read markers from the package under analysis alone, so a
// write through an Entry in another package was provably unflagged
// (unless the type grew a COWMarker method). v2 publishes the marker
// set as a CowTypesFact package fact that downstream packages import.
package shared

// Entry is a published copy-on-write snapshot: readers traverse it
// lock-free, mutators clone and republish.
//
// distlint:cow
type Entry struct {
	Hits int
	Body []byte
}
