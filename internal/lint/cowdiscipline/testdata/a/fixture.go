// Fixture for the cowdiscipline analyzer: writes through values loaded
// from atomic.Pointer (flagged), writes through values of distlint:cow
// marked types (flagged), and the sanctioned clone-then-Store pattern
// (allowed).
package fixture

import "sync/atomic"

type node struct {
	children map[byte]*node
	value    int
}

type table struct {
	root atomic.Pointer[node]
}

// --- flagged: mutation through the live snapshot ---

func badMutateRoot(t *table, v int) {
	n := t.root.Load()
	n.value = v // want `assignment through copy-on-write value "n"`
}

func badMutateChild(t *table, b byte) {
	n := t.root.Load()
	c := n.children[b]
	c.value = 1 // want `assignment through copy-on-write value "c"`
}

func badMapInsert(t *table, b byte, c *node) {
	n := t.root.Load()
	n.children[b] = c // want `assignment through copy-on-write value "n"`
}

func badAddrOf(t *table) *int {
	n := t.root.Load()
	return &n.value // want `address of copy-on-write value "n" taken`
}

// --- allowed: the clone-the-spine pattern ---

func goodCloneAndStore(t *table, v int) {
	cur := t.root.Load()
	cl := cloneNode(cur)
	cl.value = v
	t.root.Store(cl)
}

// cloneNode copies a node; copies are private until published and may
// be mutated freely (call results are never tainted).
func cloneNode(n *node) *node {
	cp := *n
	cp.children = make(map[byte]*node, len(n.children))
	for k, v := range n.children {
		cp.children[k] = v
	}
	return &cp
}

// readingIsFine: traversal and atomic counters do not mutate.
func readingIsFine(t *table, b byte) int {
	n := t.root.Load()
	if c := n.children[b]; c != nil {
		return c.value
	}
	return 0
}

// --- marked types ---

// entry is shared after publication.
//
// distlint:cow
type entry struct {
	hits  int
	stamp atomic.Int64
}

func badEntryWrite(e *entry) {
	e.hits++ // want `assignment through copy-on-write value "e"`
}

// touch is a method of the marked type itself — the owner manages its
// own lifecycle (construction happens before publication).
func (e *entry) touch() {
	e.hits++
}

// cloneEntry is a clone helper by name and so a sanctioned mutation
// site.
func cloneEntry(e *entry) *entry {
	cp := &entry{hits: e.hits}
	cp.hits++
	return cp
}

// atomicSetterIsFine: the marked type's atomics absorb concurrent
// freshness updates; method calls are not assignments.
func atomicSetterIsFine(e *entry, now int64) {
	e.stamp.Store(now)
}
