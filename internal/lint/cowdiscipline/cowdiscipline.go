// Package cowdiscipline enforces the copy-on-write read path that the
// urltable trie and the respcache shard entries depend on: a value
// reached through atomic.Pointer.Load is a shared snapshot that
// concurrent readers are traversing lock-free, so nothing may ever be
// assigned through it. Mutators must clone the spine first (the
// insertAt/removeAt pattern) and publish the new root with Store.
//
// Two taint sources exist:
//
//   - the result of a Load() call on any sync/atomic.Pointer[T], and
//     every value read out of it through selector/index chains;
//   - any parameter whose type declaration carries a `distlint:cow`
//     marker in its doc comment, unless the function is a method of the
//     marked type itself or a clone helper (name contains "clone" or
//     "Clone") — those are the sanctioned mutation sites.
//
// Assignments whose left-hand side is rooted at a tainted value are
// reported. Calling methods (atomic counters like entry.hits.Add) and
// reading fields are fine — only writes break the discipline.
package cowdiscipline

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"webcluster/internal/lint/analysis"
	"webcluster/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "cowdiscipline",
	Doc: "check that no value reached from atomic.Pointer.Load (or marked " +
		"distlint:cow) is written through — copy-on-write structures are " +
		"mutated via clones and republished with Store",
	Run:       run,
	FactTypes: []analysis.Fact{new(CowTypesFact)},
}

// CowTypesFact is a package fact listing the qualified names
// (pkgpath.Type) of types whose declarations carry the `distlint:cow`
// doc marker. Doc comments are only visible in the declaring package's
// syntax; the fact makes the marker enforceable in every downstream
// package, where previously only the COWMarker-method form crossed
// package boundaries.
type CowTypesFact struct{ Names []string }

func (*CowTypesFact) AFact() {}

func run(pass *analysis.Pass) error {
	marked := markedTypes(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, marked)
		}
	}
	return nil
}

// markedTypes collects named types whose declaration doc contains a
// `distlint:cow` marker, across this package and its module imports.
func markedTypes(pass *analysis.Pass) map[string]bool {
	marked := make(map[string]bool)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil {
					doc = gd.Doc
				}
				if doc != nil && strings.Contains(doc.Text(), "distlint:cow") {
					marked[pass.Pkg.Path()+"."+ts.Name.Name] = true
				}
			}
		}
	}
	// Publish this package's markers and pull in those of every import,
	// so a snapshot type defined in urltable is protected when a caller
	// in the distributor writes through it.
	if len(marked) > 0 {
		names := make([]string, 0, len(marked))
		for name := range marked {
			names = append(names, name)
		}
		sort.Strings(names)
		pass.ExportPackageFact(&CowTypesFact{Names: names})
	}
	for _, imp := range pass.Pkg.Imports() {
		var f CowTypesFact
		if pass.ImportPackageFact(imp, &f) {
			for _, name := range f.Names {
				marked[name] = true
			}
		}
	}
	return marked
}

// cowMarked reports whether t is a type carrying the distlint:cow
// marker. The doc-comment form is only visible when the declaring
// package is the one being analyzed; for cross-package enforcement a
// type may instead declare an empty method named COWMarker, which is
// visible through the type checker everywhere.
func cowMarked(t types.Type, marked map[string]bool) bool {
	n, ok := lintutil.Deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return false
	}
	if marked[obj.Pkg().Path()+"."+obj.Name()] {
		return true
	}
	for i := 0; i < n.NumMethods(); i++ {
		if n.Method(i).Name() == "COWMarker" {
			return true
		}
	}
	return false
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, marked map[string]bool) {
	tainted := make(map[*ast.Object]bool)

	// Parameters of marked types arrive as shared snapshots — except in
	// the sanctioned mutation sites: the marked type's own methods and
	// clone helpers, which by contract operate on fresh copies.
	if fd.Type.Params != nil && !mutationSite(pass, fd, marked) {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if name.Obj == nil {
					continue
				}
				t := lintutil.TypeOf(pass.TypesInfo, field.Type)
				if t != nil && cowMarked(t, marked) {
					tainted[name.Obj] = true
				}
			}
		}
	}

	// Propagate taint to a fixpoint: `v := snapshot.Load()` seeds it,
	// `child := v.children[i]` spreads it. Call results are clean —
	// that is exactly what makes cloneNode(v) the sanctioned escape.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Obj == nil || tainted[id.Obj] {
					continue
				}
				if taintedExpr(pass, as.Rhs[i], tainted) {
					tainted[id.Obj] = true
					changed = true
				}
			}
			return true
		})
	}

	// Flag every write through a tainted root.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				checkWrite(pass, lhs, tainted)
			}
		case *ast.IncDecStmt:
			checkWrite(pass, st.X, tainted)
		case *ast.UnaryExpr:
			// &tainted.field hands out a writable pointer into the
			// snapshot; treat taking the address of a tainted location
			// as a write.
			if st.Op.String() == "&" {
				if root := lintutil.RootIdent(st.X); root != nil && root.Obj != nil && tainted[root.Obj] {
					if _, isSel := ast.Unparen(st.X).(*ast.SelectorExpr); isSel {
						pass.Reportf(st.Pos(), "address of copy-on-write value %q taken; clone before mutating", root.Name)
					}
				}
			}
		}
		return true
	})
}

// mutationSite reports whether fd is allowed to write through marked
// parameters: a clone helper by name, or a method whose receiver type
// is itself marked (the owning type manages its own lifecycle).
func mutationSite(pass *analysis.Pass, fd *ast.FuncDecl, marked map[string]bool) bool {
	if strings.Contains(fd.Name.Name, "clone") || strings.Contains(fd.Name.Name, "Clone") {
		return true
	}
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		if t := lintutil.TypeOf(pass.TypesInfo, fd.Recv.List[0].Type); t != nil && cowMarked(t, marked) {
			return true
		}
	}
	return false
}

// taintedExpr reports whether e yields a tainted value: a Load() on an
// atomic.Pointer, or a selector/index/star chain rooted at a tainted
// variable.
func taintedExpr(pass *analysis.Pass, e ast.Expr, tainted map[*ast.Object]bool) bool {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		if lintutil.CalleeName(call) == "Load" {
			if recv := lintutil.Receiver(call); recv != nil {
				if _, ok := lintutil.IsAtomicPointer(lintutil.TypeOf(pass.TypesInfo, recv)); ok {
					return true
				}
			}
		}
		return false
	}
	root := lintutil.RootIdent(e)
	if root == nil || root.Obj == nil {
		return false
	}
	// Only pointer-shaped reads stay tainted: copying a struct value out
	// of the snapshot produces an independent copy.
	if root.Obj != nil && tainted[root.Obj] {
		t := lintutil.TypeOf(pass.TypesInfo, e)
		if t == nil {
			return true
		}
		switch t.Underlying().(type) {
		case *types.Pointer, *types.Map, *types.Slice:
			return true
		}
		if _, isIdent := e.(*ast.Ident); isIdent {
			return true
		}
	}
	return false
}

// checkWrite reports an assignment through a tainted root, e.g.
// n.children[b] = x or n.entry = e where n came from Load.
func checkWrite(pass *analysis.Pass, lhs ast.Expr, tainted map[*ast.Object]bool) {
	switch lhs.(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return // writes to plain locals never mutate the snapshot
	}
	root := lintutil.RootIdent(lhs)
	if root == nil || root.Obj == nil || !tainted[root.Obj] {
		return
	}
	pass.Reportf(lhs.Pos(), "assignment through copy-on-write value %q (a shared snapshot); clone before mutating and republish via Store", root.Name)
}
