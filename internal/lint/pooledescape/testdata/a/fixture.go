// Fixture for the pooledescape analyzer: flagged patterns (leaks on a
// return path, double release, use after release, stores into
// long-lived structs, goroutine capture) and allowed patterns (deferred
// release, ownership transfer by return, release on every branch).
package fixture

import (
	"errors"
	"sync"
)

var errTest = errors.New("test")

var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

func work() error { return nil }

func use(p *[]byte) {}

// --- flagged ---

func leakOnErrorPath(fail bool) error {
	buf := bufPool.Get().(*[]byte)
	if fail {
		return errTest // want `pooled value "buf" is not released on this return path`
	}
	bufPool.Put(buf)
	return nil
}

func doubleRelease() {
	buf := bufPool.Get().(*[]byte)
	bufPool.Put(buf)
	bufPool.Put(buf) // want `pooled value "buf" released twice`
}

func releaseAfterDefer() {
	buf := bufPool.Get().(*[]byte)
	defer bufPool.Put(buf)
	bufPool.Put(buf) // want `pooled value "buf" released twice \(already released by defer\)`
}

func useAfterRelease() int {
	buf := bufPool.Get().(*[]byte)
	bufPool.Put(buf)
	return len(*buf) // want `use of pooled value "buf" after release`
}

type holder struct{ buf *[]byte }

func (h *holder) stash() {
	buf := bufPool.Get().(*[]byte)
	h.buf = buf // want `pooled value "buf" stored into a struct that outlives the call`
}

func goroutineCapture() {
	buf := bufPool.Get().(*[]byte)
	go use(buf) // want `pooled value "buf" captured by goroutine outlives the call`
}

func leakOnOnePath(ok bool) {
	buf := bufPool.Get().(*[]byte)
	if ok {
		bufPool.Put(buf)
	}
} // want `pooled value "buf" is not released on this return path`

// --- allowed ---

func deferredRelease(fail bool) error {
	buf := bufPool.Get().(*[]byte)
	defer bufPool.Put(buf)
	if fail {
		return errTest
	}
	use(buf)
	return nil
}

func closureDeferredRelease() {
	buf := bufPool.Get().(*[]byte)
	defer func() {
		bufPool.Put(buf)
	}()
	use(buf)
}

func releasedOnEveryBranch(ok bool) {
	buf := bufPool.Get().(*[]byte)
	if ok {
		use(buf)
		bufPool.Put(buf)
		return
	}
	bufPool.Put(buf)
}

// ownershipTransfer hands the pooled value to the caller — the
// conntrack pattern, where the PooledConn owns the reader until
// Release.
func ownershipTransfer() *[]byte {
	buf := bufPool.Get().(*[]byte)
	return buf
}

type frame struct{ buf *[]byte }

// localStructTransfer builds the pooled value into a returned struct:
// the struct is the new owner.
func localStructTransfer() *frame {
	buf := bufPool.Get().(*[]byte)
	f := &frame{}
	f.buf = buf
	return f
}

// suppressedLeak demonstrates the one sanctioned suppression form; the
// directive must name the analyzer and give a reason.
func suppressedLeak(fail bool) error {
	buf := bufPool.Get().(*[]byte)
	if fail {
		//distlint:ignore pooledescape fixture demonstrating an explained suppression
		return errTest
	}
	bufPool.Put(buf)
	return nil
}
