// Conditional acquisition: a nil guard carries lifecycle information.
// A value acquired by plain `=` into a pre-declared variable outlives
// the branch it was acquired in (the conditional tracing-span pattern),
// and inside `if v == nil` — or the else of `if v != nil` — the value
// was never acquired, so that path holds no obligation.
package fixture

func condAcquireGuardedRelease(traced bool) {
	var buf *[]byte
	if traced {
		buf = bufPool.Get().(*[]byte)
	}
	if buf != nil {
		bufPool.Put(buf)
	}
}

func condAcquireSwitch(mode int) {
	var buf *[]byte
	switch mode {
	case 1:
		buf = bufPool.Get().(*[]byte)
	}
	if buf != nil {
		bufPool.Put(buf)
	}
}

func condAcquireLeaked(traced bool) error {
	var buf *[]byte
	if traced {
		buf = bufPool.Get().(*[]byte)
	}
	if buf != nil {
		use(buf)
	}
	return work() // want `pooled value "buf" is not released on this return path`
}
