// Package pool is the helper side of the pooledescape cross-package
// fixture. Lease and Recycle deliberately avoid the Acquire*/Release*
// spellings the pre-v2 engine keyed on: that engine only recognized
// acquisitions written Acquire*/pool.Get and releases written
// Release*/pool.Put inside the body under analysis, so a pooled value
// obtained through pool.Lease from another package was provably
// untracked. v2 publishes this package's escape summaries as
// ReturnsPooledFact/ReleasesParamFact, which callers consult.
package pool

import "sync"

// Buf is a reusable scratch buffer.
type Buf struct{ b []byte }

var bufs = sync.Pool{New: func() any { return new(Buf) }}

// Lease hands out a pooled buffer; the caller owns the release.
func Lease() *Buf { return bufs.Get().(*Buf) }

// Recycle returns a leased buffer to the pool.
func Recycle(b *Buf) { bufs.Put(b) }

// Fill copies p into the buffer and reports the bytes taken.
func (b *Buf) Fill(p []byte) int {
	b.b = append(b.b[:0], p...)
	return len(p)
}
