// Cross-package fixture for pooledescape: every obligation here flows
// through testdata/pool, whose helpers avoid the Acquire*/Release*
// naming. The pre-v2 engine matched only those spellings in the body
// being analyzed, so neither the acquisition via pool.Lease nor the
// discharge via pool.Recycle was visible from this package — the leak
// below was provably unreportable. v2 resolves both through exported
// facts.
package fixture

import "webcluster/internal/lint/pooledescape/testdata/pool"

// --- flagged ---

func leak(p []byte) int {
	b := pool.Lease()
	n := b.Fill(p)
	return n // want `pooled value "b" is not released on this return path`
}

func doubleRelease(p []byte) {
	b := pool.Lease()
	b.Fill(p)
	pool.Recycle(b)
	pool.Recycle(b) // want `pooled value "b" released twice`
}

// --- allowed ---

func roundTrip(p []byte) int {
	b := pool.Lease()
	defer pool.Recycle(b)
	return b.Fill(p)
}

func releaseOnEveryPath(p []byte) int {
	b := pool.Lease()
	if len(p) == 0 {
		pool.Recycle(b)
		return 0
	}
	n := b.Fill(p)
	pool.Recycle(b)
	return n
}
