// Package pooledescape enforces the pooled-value lifecycle that the
// httpx and respcache hot paths rely on: a value taken from a sync.Pool
// (directly via Get, or through an Acquire* helper) must be released on
// every return path, must never be used after its Release*/Put call,
// must be released exactly once, and must not be stored into a struct
// that outlives the call. Returning the value, or building it into a
// returned composite literal, transfers ownership to the caller and is
// allowed — that is how conntrack hands a pooled bufio.Reader to
// PooledConn.
//
// Since distlint v2 the lifecycle is tracked across call boundaries:
// the analyzer exports a ReturnsPooledFact for every function whose
// result carries a pooled value and a ReleasesParamFact for every
// function that releases one of its parameters, and consults those
// facts (plus call-graph summaries for packages in the same run) at
// acquire and release sites. `v := helperThatReturnsPooled()` starts
// the same obligation as a direct Get, and `releaseHelper(v)`
// discharges it, no matter which package the helper lives in or what
// it is named.
package pooledescape

import (
	"go/ast"
	"go/token"
	"strings"

	"webcluster/internal/lint/analysis"
	"webcluster/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "pooledescape",
	Doc: "check that sync.Pool values are released exactly once on every " +
		"return path, never used after release, and never stored into " +
		"long-lived structs; tracked across call boundaries via escape " +
		"summaries",
	Run:       run,
	FactTypes: []analysis.Fact{new(ReturnsPooledFact), new(ReleasesParamFact)},
}

// ReturnsPooledFact marks a function whose result carries a pooled
// value, transferring the release obligation to its callers.
type ReturnsPooledFact struct{}

func (*ReturnsPooledFact) AFact() {}

// ReleasesParamFact marks which parameters of a function are released
// inside it; a call passing a tracked value at such a position
// discharges the caller's obligation.
type ReleasesParamFact struct{ Params []bool }

func (*ReleasesParamFact) AFact() {}

// status is the per-variable lattice. Order matters: merge takes the
// minimum, so a variable live on either branch stays live (leaks are
// reported when they happen on any path), while use-after-release is
// only reported when the release is certain.
type status int

const (
	live status = iota
	released
	escaped  // ownership transferred (returned / built into a result)
	deferred // a defer guarantees release at every return
)

func merge(a, b status) status {
	if a < b {
		return a
	}
	return b
}

type checker struct {
	pass  *analysis.Pass
	vars  map[*ast.Object]*tracked
	conds int // nesting depth of conditional acquisition (loops)
}

type tracked struct {
	name    string
	st      status
	acquire token.Pos
	// reported suppresses duplicate leak diagnostics for the same
	// variable across sibling return paths.
	reported bool
	// outer marks values acquired by plain assignment (`=`) into a
	// variable declared before the acquiring statement: the value
	// outlives the branch it was acquired in, so joins adopt it into
	// the enclosing state instead of reporting at the branch end.
	outer bool
}

func run(pass *analysis.Pass) error {
	exportFacts(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
			// Function literals manage their own pooled values; analyze
			// each body independently.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					checkFunc(pass, fl.Body)
				}
				return true
			})
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	c := &checker{pass: pass, vars: make(map[*ast.Object]*tracked)}
	term := c.walkBlock(body)
	if !term {
		// Falling off the end of a function is a return path too.
		c.checkLeaks(body.End())
	}
}

// walkBlock walks statements in order; reports whether the block
// definitely terminates (returns or panics).
func (c *checker) walkBlock(b *ast.BlockStmt) bool {
	for _, s := range b.List {
		if c.walkStmt(s) {
			return true
		}
	}
	return false
}

func (c *checker) walkStmt(s ast.Stmt) (terminated bool) {
	switch st := s.(type) {
	case *ast.AssignStmt:
		c.checkUses(st)
		c.handleAssign(st)
	case *ast.ExprStmt:
		c.handleCallStmt(st.X)
	case *ast.DeferStmt:
		c.handleDefer(st)
	case *ast.ReturnStmt:
		c.handleReturn(st)
		return true
	case *ast.IfStmt:
		c.checkUses(st.Cond)
		if st.Init != nil {
			c.walkStmt(st.Init)
		}
		thenC := c.fork()
		elseC := c.fork()
		// Nil guards carry lifecycle information: inside `if v == nil`
		// (and in the else of `if v != nil`) a conditionally acquired
		// value was never acquired, so that path has no obligation.
		if obj, eq := c.nilCheck(st.Cond); obj != nil {
			nilSide := thenC
			if !eq {
				nilSide = elseC
			}
			if tv := nilSide.vars[obj]; tv != nil && tv.st == live {
				tv.st = escaped
			}
		}
		thenTerm := thenC.walkBlock(st.Body)
		elseTerm := false
		if st.Else != nil {
			elseTerm = elseC.walkStmt(st.Else)
		}
		c.join(thenC, thenTerm, elseC, elseTerm)
		return thenTerm && elseTerm
	case *ast.BlockStmt:
		return c.walkBlock(st)
	case *ast.ForStmt:
		if st.Init != nil {
			c.walkStmt(st.Init)
		}
		c.checkUses(st.Cond)
		bodyC := c.fork()
		bodyC.conds++
		bodyC.walkBlock(st.Body)
		c.join(bodyC, false, c, false)
	case *ast.RangeStmt:
		c.checkUses(st.X)
		bodyC := c.fork()
		bodyC.conds++
		bodyC.walkBlock(st.Body)
		c.join(bodyC, false, c, false)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		c.walkClauses(st)
	case *ast.GoStmt:
		// A pooled value captured by a spawned goroutine outlives the
		// call frame in every way that matters here.
		for obj, tv := range c.vars {
			if tv.st == live && usesObj(st.Call, obj) {
				c.pass.Reportf(st.Pos(), "pooled value %q captured by goroutine outlives the call", tv.name)
				tv.st = escaped
			}
		}
	case *ast.LabeledStmt:
		return c.walkStmt(st.Stmt)
	case *ast.BranchStmt:
		// break/continue/goto leave the linear walk; treat as
		// terminating this path rather than invent flow edges.
		return true
	}
	return false
}

// walkClauses handles switch/select bodies: each clause is a fork, the
// parent state becomes the merge of all falls-through clauses.
func (c *checker) walkClauses(s ast.Stmt) {
	var clauses []ast.Stmt
	switch st := s.(type) {
	case *ast.SwitchStmt:
		c.checkUses(st.Tag)
		clauses = st.Body.List
	case *ast.TypeSwitchStmt:
		clauses = st.Body.List
	case *ast.SelectStmt:
		clauses = st.Body.List
	}
	var survivors []*checker
	allTerm := true
	for _, cl := range clauses {
		var body []ast.Stmt
		switch cc := cl.(type) {
		case *ast.CaseClause:
			body = cc.Body
		case *ast.CommClause:
			body = cc.Body
		}
		fc := c.fork()
		term := false
		for _, bs := range body {
			if fc.walkStmt(bs) {
				term = true
				break
			}
		}
		if !term {
			survivors = append(survivors, fc)
			allTerm = false
		}
	}
	if allTerm {
		return
	}
	for obj, tv := range c.vars {
		st := tv.st
		first := true
		for _, fc := range survivors {
			if ftv, ok := fc.vars[obj]; ok {
				if first {
					st = ftv.st
					first = false
				} else {
					st = merge(st, ftv.st)
				}
				tv.reported = tv.reported || ftv.reported
			}
		}
		tv.st = st
	}
	// Clause-acquired values assigned into pre-declared variables flow
	// out of the switch/select; adopt them like join does.
	for _, fc := range survivors {
		for obj, tv := range fc.vars {
			if _, ok := c.vars[obj]; ok {
				continue
			}
			if tv.outer {
				cp := *tv
				c.vars[obj] = &cp
			}
		}
	}
}

func (c *checker) fork() *checker {
	nc := &checker{pass: c.pass, vars: make(map[*ast.Object]*tracked, len(c.vars)), conds: c.conds}
	for k, v := range c.vars {
		cp := *v
		nc.vars[k] = &cp
	}
	return nc
}

// join folds the surviving branch states back into c. A branch that
// terminated already had its leaks checked at its return.
func (c *checker) join(a *checker, aTerm bool, b *checker, bTerm bool) {
	for obj, tv := range c.vars {
		av, bv := a.vars[obj], b.vars[obj]
		switch {
		case aTerm && bTerm:
			// unreachable after join; keep as-is
		case aTerm:
			if bv != nil {
				*tv = *bv
			}
		case bTerm:
			if av != nil {
				*tv = *av
			}
		default:
			if av != nil && bv != nil {
				tv.st = merge(av.st, bv.st)
				tv.reported = av.reported || bv.reported
			}
		}
	}
	// Values acquired inside a branch must be resolved inside it — with
	// one exception: an acquisition assigned (`=`) into a pre-declared
	// variable flows out of the branch, so the join adopts it and the
	// enclosing walk carries the obligation forward (the conditional
	// `if traced { sp = tel.StartSpan(...) }` pattern). Everything else
	// still live leaks at the join; the fork's walk already checked its
	// own return paths.
	for _, src := range []struct {
		c    *checker
		term bool
	}{{a, aTerm}, {b, bTerm}} {
		if src.c == c || src.term {
			continue
		}
		for obj, tv := range src.c.vars {
			if _, ok := c.vars[obj]; ok {
				continue
			}
			if tv.outer {
				cp := *tv
				c.vars[obj] = &cp
				continue
			}
			if tv.st == live && !tv.reported {
				c.pass.Reportf(tv.acquire, "pooled value %q is not released on every path", tv.name)
			}
		}
	}
}

// nilCheck matches a `v == nil` / `v != nil` condition over a tracked
// variable, returning its object and whether the operator is ==.
func (c *checker) nilCheck(cond ast.Expr) (*ast.Object, bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return nil, false
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	if isNilIdent(x) {
		x, y = y, x
	}
	if !isNilIdent(y) {
		return nil, false
	}
	id, ok := x.(*ast.Ident)
	if !ok || id.Obj == nil {
		return nil, false
	}
	if _, tracked := c.vars[id.Obj]; !tracked {
		return nil, false
	}
	return id.Obj, be.Op == token.EQL
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil" && id.Obj == nil
}

// handleAssign tracks acquisitions (v := Acquire...() / pool.Get()) and
// flags stores of live pooled values into long-lived structures.
func (c *checker) handleAssign(st *ast.AssignStmt) {
	// Store side: v appearing on the RHS being written somewhere.
	for i, lhs := range st.Lhs {
		if i >= len(st.Rhs) && len(st.Rhs) != 1 {
			break
		}
		rhs := st.Rhs[min(i, len(st.Rhs)-1)]
		for obj, tv := range c.vars {
			if tv.st != live || !usesObj(rhs, obj) {
				continue
			}
			switch {
			case inCompositeLit(rhs, obj):
				// Built into a new value — that value is the owner now
				// (returned-struct transfer, the conntrack pattern).
				tv.st = escaped
			case c.escapingStore(lhs):
				c.pass.Reportf(st.Pos(), "pooled value %q stored into a struct that outlives the call", tv.name)
				tv.st = escaped
			case isFieldOrElem(lhs):
				// Field of a function-local value: ownership moves to
				// that value; if it escapes, the return transfers both.
				tv.st = escaped
			}
		}
	}
	// Acquire side: only direct `v := acquire()` forms are tracked.
	if len(st.Lhs) != len(st.Rhs) {
		return
	}
	for i, lhs := range st.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" || id.Obj == nil {
			continue
		}
		if tv, ok := c.vars[id.Obj]; ok {
			// Reassignment replaces the tracked value; the old one must
			// already be resolved.
			if tv.st == live && !tv.reported {
				c.pass.Reportf(st.Pos(), "pooled value %q overwritten while still live", tv.name)
				tv.reported = true
			}
			delete(c.vars, id.Obj)
		}
		if pos, ok := c.isAcquire(st.Rhs[i]); ok {
			// Plain `=` writes into a variable declared before this
			// statement, so the value survives any enclosing branch.
			c.vars[id.Obj] = &tracked{name: id.Name, st: live, acquire: pos, outer: st.Tok == token.ASSIGN}
		}
	}
}

// escapingStore reports whether lhs denotes storage that outlives the
// call: a field or element of anything other than a freshly declared
// local, or a dereference.
func (c *checker) escapingStore(lhs ast.Expr) bool {
	switch lhs.(type) {
	case *ast.Ident:
		return false // plain local (or blank) — stays in the frame
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		root := lintutil.RootIdent(lhs)
		if root == nil || root.Obj == nil {
			return true // package-level, cross-file, or unresolvable base
		}
		if _, isField := root.Obj.Decl.(*ast.Field); isField {
			return true // function parameter or receiver
		}
		// A field of a function-local value stays in the frame; if the
		// local itself escapes by being returned, the return transfers
		// ownership of the whole structure (the conntrack PooledConn
		// pattern).
		return false
	}
	return false
}

// exportFacts publishes this package's escape summaries as facts so
// downstream packages see them without access to this package's syntax.
func exportFacts(pass *analysis.Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			node := pass.Module.NodeForDecl(pass.Unit, fd)
			if node == nil {
				continue
			}
			s := pass.Module.Summary(node.Func)
			if s == nil {
				continue
			}
			if s.ReturnsPooled {
				pass.ExportObjectFact(node.Func, &ReturnsPooledFact{})
			}
			for _, rel := range s.ReleasesParam {
				if rel {
					pass.ExportObjectFact(node.Func, &ReleasesParamFact{Params: s.ReleasesParam})
					break
				}
			}
		}
	}
}

// isAcquire reports whether e acquires a pooled value: a call to an
// Acquire*/acquire* helper, sync.Pool.Get (possibly type-asserted), or
// any function whose fact/summary says it returns a pooled value.
func (c *checker) isAcquire(e ast.Expr) (token.Pos, bool) {
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return token.NoPos, false
	}
	name := lintutil.CalleeName(call)
	if strings.HasPrefix(name, "Acquire") || strings.HasPrefix(name, "acquire") {
		return call.Pos(), true
	}
	if name == "Get" {
		if recv := lintutil.Receiver(call); recv != nil {
			if lintutil.IsSyncPool(lintutil.TypeOf(c.pass.TypesInfo, recv)) {
				return call.Pos(), true
			}
		}
	}
	if fn := c.pass.Module.CalleeFunc(c.pass.TypesInfo, call); fn != nil {
		var rp ReturnsPooledFact
		if c.pass.ImportObjectFact(fn, &rp) {
			return call.Pos(), true
		}
		if s := c.pass.Module.Summary(fn); s != nil && s.ReturnsPooled {
			return call.Pos(), true
		}
	}
	return token.NoPos, false
}

// releaseTarget returns the tracked object a call releases, if any:
// Release*(v), release*(v), pool.Put(v), or helper(…, v, …) where the
// helper's fact/summary says it releases that parameter.
func (c *checker) releaseTarget(call *ast.CallExpr) (*ast.Object, bool) {
	name := lintutil.CalleeName(call)
	isRel := strings.HasPrefix(name, "Release") || strings.HasPrefix(name, "release")
	if name == "Put" {
		if recv := lintutil.Receiver(call); recv != nil && lintutil.IsSyncPool(lintutil.TypeOf(c.pass.TypesInfo, recv)) {
			isRel = true
		}
	}
	if isRel && len(call.Args) > 0 {
		if obj, ok := c.trackedArg(call.Args[0]); ok {
			return obj, true
		}
		return nil, false
	}
	// Delegated release: the callee's escape summary says it releases
	// the parameter our tracked value is passed as.
	if fn := c.pass.Module.CalleeFunc(c.pass.TypesInfo, call); fn != nil {
		var params []bool
		var rf ReleasesParamFact
		if c.pass.ImportObjectFact(fn, &rf) {
			params = rf.Params
		} else if s := c.pass.Module.Summary(fn); s != nil {
			params = s.ReleasesParam
		}
		for i, rel := range params {
			if !rel || i >= len(call.Args) {
				continue
			}
			if obj, ok := c.trackedArg(call.Args[i]); ok {
				return obj, true
			}
		}
	}
	return nil, false
}

// trackedArg resolves an argument expression to a tracked variable.
func (c *checker) trackedArg(arg ast.Expr) (*ast.Object, bool) {
	id, ok := ast.Unparen(arg).(*ast.Ident)
	if !ok || id.Obj == nil {
		return nil, false
	}
	if _, tracked := c.vars[id.Obj]; !tracked {
		return nil, false
	}
	return id.Obj, true
}

func (c *checker) handleCallStmt(e ast.Expr) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		c.checkUses(e)
		return
	}
	if obj, ok := c.releaseTarget(call); ok {
		tv := c.vars[obj]
		switch tv.st {
		case released:
			c.pass.Reportf(call.Pos(), "pooled value %q released twice", tv.name)
		case deferred:
			c.pass.Reportf(call.Pos(), "pooled value %q released twice (already released by defer)", tv.name)
		default:
			tv.st = released
		}
		return
	}
	c.checkUses(e)
}

// handleDefer marks values released by a defer — either directly
// (`defer pool.Put(v)`) or through a closure whose body releases them.
func (c *checker) handleDefer(st *ast.DeferStmt) {
	if obj, ok := c.releaseTarget(st.Call); ok {
		tv := c.vars[obj]
		if tv.st == deferred {
			c.pass.Reportf(st.Pos(), "pooled value %q released twice (duplicate defer)", tv.name)
		}
		tv.st = deferred
		return
	}
	if fl, ok := st.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if obj, ok := c.releaseTarget(call); ok {
				c.vars[obj].st = deferred
			}
			return true
		})
	}
}

// handleReturn resolves the function exit: values named in the return
// expression transfer to the caller; everything still live leaks.
func (c *checker) handleReturn(st *ast.ReturnStmt) {
	for obj, tv := range c.vars {
		for _, res := range st.Results {
			if usesObj(res, obj) {
				if tv.st == released {
					c.pass.Reportf(st.Pos(), "use of pooled value %q after release", tv.name)
				}
				if tv.st == live {
					tv.st = escaped
				}
			}
		}
	}
	c.checkLeaks(st.Pos())
}

func (c *checker) checkLeaks(pos token.Pos) {
	for _, tv := range c.vars {
		if tv.st == live && !tv.reported {
			c.pass.Reportf(pos, "pooled value %q is not released on this return path", tv.name)
			tv.reported = true
		}
	}
}

// checkUses reports reads of variables that were already released.
func (c *checker) checkUses(n ast.Node) {
	if n == nil {
		return
	}
	for obj, tv := range c.vars {
		if tv.st != released {
			continue
		}
		if usesObj(n, obj) {
			c.pass.Reportf(n.Pos(), "use of pooled value %q after release", tv.name)
			tv.reported = true
		}
	}
}

// inCompositeLit reports whether obj appears inside a composite literal
// within e.
func inCompositeLit(e ast.Expr, obj *ast.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if cl, ok := n.(*ast.CompositeLit); ok && usesObj(cl, obj) {
			found = true
		}
		return !found
	})
	return found
}

func isFieldOrElem(lhs ast.Expr) bool {
	switch lhs.(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

func usesObj(n ast.Node, obj *ast.Object) bool {
	if n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok && id.Obj == obj {
			found = true
		}
		return !found
	})
	return found
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
