package pooledescape_test

import (
	"testing"

	"webcluster/internal/lint/linttest"
	"webcluster/internal/lint/pooledescape"
)

func TestPooledEscape(t *testing.T) {
	linttest.Run(t, "testdata/a", pooledescape.Analyzer)
}
