package pooledescape_test

import (
	"testing"

	"webcluster/internal/lint/linttest"
	"webcluster/internal/lint/pooledescape"
)

func TestPooledEscape(t *testing.T) {
	linttest.Run(t, "testdata/a", pooledescape.Analyzer)
}

// TestPooledEscapeCrossPackage runs the helper and caller fixtures in
// one interprocedural pass: the caller's obligations exist only because
// the helper package's facts say Lease returns a pooled value and
// Recycle releases its parameter.
func TestPooledEscapeCrossPackage(t *testing.T) {
	linttest.RunDirs(t, pooledescape.Analyzer, "testdata/pool", "testdata/b")
}
