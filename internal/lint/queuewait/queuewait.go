// Package queuewait enforces the bounded-wait rule the admission
// subsystem is built on: a goroutine parked on a queue must always
// have a way out, so an overload never strands waiters behind a wake
// signal that never comes. Concretely, every channel wait must be
// bounded:
//
//  1. A bare receive (`<-ch` outside a select) is always flagged — the
//     sender crashing, shedding the waiter, or simply forgetting the
//     handoff leaks the goroutine forever.
//  2. A select with no escape hatch is flagged. An escape hatch is a
//     default case, a timer case (`<-t.C` for a time.Timer/Ticker, or
//     `<-time.After(...)`), or a cancellation case (`<-ctx.Done()`).
//  3. Ranging over a channel is flagged: each iteration is an
//     unbounded bare receive in disguise.
//
// Receives directly from a timer or cancellation channel are exempt
// everywhere — they are the bound, not the wait.
package queuewait

import (
	"go/ast"
	"go/token"
	"go/types"

	"webcluster/internal/lint/analysis"
	"webcluster/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "queuewait",
	Doc: "check that every channel wait is bounded by a timeout, " +
		"default, or cancellation case",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.SelectStmt:
				checkSelect(pass, v)
				// Descend only into the case bodies: the comm statements
				// themselves are the select's waits, already judged above.
				for _, c := range v.Body.List {
					if cc, ok := c.(*ast.CommClause); ok {
						for _, stmt := range cc.Body {
							ast.Inspect(stmt, visit)
						}
					}
				}
				return false
			case *ast.UnaryExpr:
				if v.Op == token.ARROW && !boundedSource(pass, v.X) {
					pass.Reportf(v.Pos(), "bare channel receive waits without a timeout; use a select with a timer, default, or cancellation case")
				}
			case *ast.RangeStmt:
				if isChan(lintutil.TypeOf(pass.TypesInfo, v.X)) {
					pass.Reportf(v.Pos(), "ranging over a channel waits without a timeout between messages; receive in a select with a timer, default, or cancellation case")
				}
			}
			return true
		}
		ast.Inspect(file, visit)
	}
	return nil
}

// checkSelect flags a select statement with no escape hatch: every
// case is an unbounded channel operation, so the whole statement can
// park forever.
func checkSelect(pass *analysis.Pass, sel *ast.SelectStmt) {
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			return // default case: never blocks
		}
		if recv := commReceive(cc.Comm); recv != nil && boundedSource(pass, recv) {
			return // timer or cancellation case bounds the wait
		}
	}
	pass.Reportf(sel.Pos(), "select has no default, timer, or cancellation case; the wait is unbounded")
}

// commReceive returns the received-from channel expression of a comm
// clause statement, or nil for a send.
func commReceive(stmt ast.Stmt) ast.Expr {
	var rhs ast.Expr
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		rhs = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			rhs = s.Rhs[0]
		}
	}
	if ue, ok := ast.Unparen(rhs).(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
		return ue.X
	}
	return nil
}

// boundedSource reports whether the channel expression e is inherently
// bounded: a time.Timer/Ticker channel, time.After/time.Tick, or a
// context-style Done() cancellation channel.
func boundedSource(pass *analysis.Pass, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		name := lintutil.CalleeName(x)
		if name == "Done" {
			return true
		}
		if (name == "After" || name == "Tick") && isTimePkgCall(pass, x) {
			return true
		}
	case *ast.SelectorExpr:
		if x.Sel.Name == "C" {
			t := lintutil.TypeOf(pass.TypesInfo, x.X)
			if lintutil.IsNamed(t, "time", "Timer") || lintutil.IsNamed(t, "time", "Ticker") {
				return true
			}
		}
	}
	return false
}

// isTimePkgCall reports whether call is a selector call rooted at the
// imported "time" package.
func isTimePkgCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := lintutil.ObjectOf(pass.TypesInfo, id).(*types.PkgName)
	return ok && pn.Imported().Path() == "time"
}

// isChan reports whether t is a channel type.
func isChan(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}
