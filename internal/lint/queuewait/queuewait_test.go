package queuewait_test

import (
	"testing"

	"webcluster/internal/lint/linttest"
	"webcluster/internal/lint/queuewait"
)

func TestQueueWait(t *testing.T) {
	linttest.Run(t, "testdata/a", queuewait.Analyzer)
}
