// Fixture for the queuewait analyzer: every channel wait must be
// bounded by a timeout, default, or cancellation case. The allowed
// patterns mirror internal/admission's waiter handoff: park in a
// select whose other arm is a timer.
package fixture

import (
	"context"
	"time"
)

// --- flagged ---

func bareReceive(ch chan struct{}) {
	<-ch // want `bare channel receive waits without a timeout`
}

func bareReceiveAssign(ch chan int) int {
	v := <-ch // want `bare channel receive waits without a timeout`
	return v
}

func unboundedSelect(a, b chan int) int {
	select { // want `select has no default, timer, or cancellation case`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func rangeOverChannel(ch chan int) int {
	var sum int
	for v := range ch { // want `ranging over a channel waits without a timeout`
		sum += v
	}
	return sum
}

func nestedInSelectBody(ch, inner chan struct{}) {
	t := time.NewTimer(time.Second)
	defer t.Stop()
	select {
	case <-ch:
		<-inner // want `bare channel receive waits without a timeout`
	case <-t.C:
	}
}

// --- allowed ---

// timerSelect is the admission waiter pattern: park until woken or the
// class's max queue wait elapses.
func timerSelect(ch chan struct{}, maxWait time.Duration) bool {
	t := time.NewTimer(maxWait)
	defer t.Stop()
	select {
	case <-ch:
		return true
	case <-t.C:
		return false
	}
}

func defaultSelect(ch chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

func afterSelect(ch chan struct{}) bool {
	select {
	case <-ch:
		return true
	case <-time.After(time.Second):
		return false
	}
}

func cancellationSelect(ctx context.Context, ch chan struct{}) bool {
	select {
	case <-ch:
		return true
	case <-ctx.Done():
		return false
	}
}

// bareTimerReceive: the timer channel is the bound, not the wait.
func bareTimerReceive(d time.Duration) {
	t := time.NewTimer(d)
	<-t.C
}

func bareTickerReceive(tk *time.Ticker) {
	<-tk.C
}

func bareAfterReceive() {
	<-time.After(time.Millisecond)
}

func bareDoneReceive(ctx context.Context) {
	<-ctx.Done()
}

// suppressedReceive shows the sanctioned escape for a wait that is
// provably woken (e.g. the closer holds no locks and cannot fail).
func suppressedReceive(ch chan struct{}) {
	//distlint:ignore queuewait fixture exercises the suppression form
	<-ch
}
