// Package lintutil holds the small AST/type helpers the distlint
// analyzers share: callee naming, receiver typing, selector roots, and
// recognizers for the std types the invariants are phrased in terms of
// (sync.Pool, sync.Mutex, sync.Cond, net.Conn, atomic.Pointer).
package lintutil

import (
	"go/ast"
	"go/types"
)

// CalleeName returns the bare name of a call's callee: "f" for f(x),
// "m" for recv.m(x), "" when the callee is not a named function or
// method (e.g. a call of a call).
func CalleeName(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// Receiver returns the receiver expression of a method call (recv for
// recv.m(x)), nil for plain function calls.
func Receiver(call *ast.CallExpr) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

// RootIdent walks a selector/index/star/paren chain to its base
// identifier: s.a.b[i] → s. Returns nil when the base is not an ident.
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// Deref strips pointers from t.
func Deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// IsNamed reports whether t (after stripping pointers) is the named
// type pkgPath.name. The path match accepts both exact equality and a
// suffix match so module-local packages compare the same whether the
// loader saw them under their full or relative import path.
func IsNamed(t types.Type, pkgPath, name string) bool {
	n, ok := Deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == pkgPath || (len(p) > len(pkgPath) && p[len(p)-len(pkgPath)-1] == '/' && p[len(p)-len(pkgPath):] == pkgPath)
}

// IsSyncPool reports whether t is sync.Pool (or *sync.Pool).
func IsSyncPool(t types.Type) bool { return IsNamed(t, "sync", "Pool") }

// IsSyncCond reports whether t is sync.Cond (or *sync.Cond).
func IsSyncCond(t types.Type) bool { return IsNamed(t, "sync", "Cond") }

// IsMutex reports whether t is sync.Mutex or sync.RWMutex.
func IsMutex(t types.Type) bool {
	return IsNamed(t, "sync", "Mutex") || IsNamed(t, "sync", "RWMutex")
}

// IsAtomicPointer reports whether t is sync/atomic.Pointer[T] (or a
// pointer to one), returning the element type when it is.
func IsAtomicPointer(t types.Type) (types.Type, bool) {
	n, ok := Deref(t).(*types.Named)
	if !ok {
		return nil, false
	}
	obj := n.Obj()
	if obj.Name() != "Pointer" || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return nil, false
	}
	args := n.TypeArgs()
	if args == nil || args.Len() != 1 {
		return nil, false
	}
	return args.At(0), true
}

// NetConnIface returns the net.Conn interface type if pkg (or one of
// its imports, transitively one level) imports net; nil otherwise.
func NetConnIface(pkg *types.Package) *types.Interface {
	var netPkg *types.Package
	var find func(p *types.Package, depth int)
	seen := map[*types.Package]bool{}
	find = func(p *types.Package, depth int) {
		if netPkg != nil || seen[p] || depth > 3 {
			return
		}
		seen[p] = true
		if p.Path() == "net" {
			netPkg = p
			return
		}
		for _, imp := range p.Imports() {
			find(imp, depth+1)
		}
	}
	find(pkg, 0)
	if netPkg == nil {
		return nil
	}
	obj := netPkg.Scope().Lookup("Conn")
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

// IsNetConn reports whether t satisfies the net.Conn interface (conn is
// nil-safe: returns false when the package graph has no net).
func IsNetConn(t types.Type, conn *types.Interface) bool {
	if conn == nil || t == nil {
		return false
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.Invalid {
		return false
	}
	if types.Implements(t, conn) {
		return true
	}
	if _, ok := t.(*types.Pointer); !ok {
		return types.Implements(types.NewPointer(t), conn)
	}
	return false
}

// TypeOf is a nil-safe info.Types lookup.
func TypeOf(info *types.Info, e ast.Expr) types.Type {
	if e == nil {
		return nil
	}
	return info.TypeOf(e)
}

// ObjectOf resolves an identifier to its object via Uses then Defs.
func ObjectOf(info *types.Info, id *ast.Ident) types.Object {
	if id == nil {
		return nil
	}
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// FuncBodies yields every function body in f with its declaration name:
// declared functions and methods. Function literals are contained in
// those bodies; analyzers that need them walk explicitly.
func FuncBodies(f *ast.File) map[*ast.FuncDecl]*ast.BlockStmt {
	out := make(map[*ast.FuncDecl]*ast.BlockStmt)
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			out[fd] = fd.Body
		}
	}
	return out
}

// UsesIdent reports whether obj is referenced anywhere inside e.
func UsesIdent(info *types.Info, e ast.Node, obj types.Object) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && ObjectOf(info, id) == obj {
			found = true
		}
		return !found
	})
	return found
}
