// Facts: analyzer-scoped information exported for objects and packages
// of one analysis unit and importable from any later unit, mirroring
// golang.org/x/tools/go/analysis. A fact is a pointer to a struct with
// the marker method AFact; ExportObjectFact attaches one to a
// types.Object, and a downstream package's pass reads it back with
// ImportObjectFact. The driver runs packages in dependency order, so by
// the time a pass analyzes a caller, facts for every imported callee
// are present. This is what lets pooledescape know that a helper two
// packages away returns a pooled buffer, without re-analyzing it.
package analysis

import (
	"fmt"
	"go/types"
	"reflect"
)

// Fact is analyzer-private state attached to an object or package.
// Implementations must be pointers to structs; the marker method keeps
// arbitrary values out of the store, same as upstream.
type Fact interface {
	AFact()
}

// factKey identifies one stored fact: which analyzer produced it, the
// object (or package) it describes, and the concrete fact type — an
// analyzer may attach several fact types to the same object.
type factKey struct {
	analyzer *Analyzer
	key      any // types.Object or *types.Package
	typ      reflect.Type
}

// factStore holds every fact exported during a module run. It lives on
// the Module so facts survive across packages and analyzers see only
// their own (the analyzer is part of the key).
type factStore struct {
	m map[factKey]Fact
}

func newFactStore() *factStore {
	return &factStore{m: make(map[factKey]Fact)}
}

func (s *factStore) export(a *Analyzer, key any, f Fact) {
	t := reflect.TypeOf(f)
	if t.Kind() != reflect.Ptr {
		panic(fmt.Sprintf("analysis: fact %T is not a pointer", f))
	}
	s.m[factKey{a, key, t}] = f
}

// lookup copies the stored fact (if any) into f and reports whether one
// existed. Copying keeps the store immutable from the reader's side,
// matching the upstream contract.
func (s *factStore) lookup(a *Analyzer, key any, f Fact) bool {
	t := reflect.TypeOf(f)
	got, ok := s.m[factKey{a, key, t}]
	if !ok {
		return false
	}
	reflect.ValueOf(f).Elem().Set(reflect.ValueOf(got).Elem())
	return true
}

// ObjectFact is one exported (object, fact) pair, for AllObjectFacts.
type ObjectFact struct {
	Object types.Object
	Fact   Fact
}

// ExportObjectFact associates fact with obj for downstream passes of
// the same analyzer. obj should belong to the package being analyzed.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if obj == nil {
		panic("analysis: ExportObjectFact(nil)")
	}
	p.Module.facts.export(p.Analyzer, obj, fact)
}

// ImportObjectFact copies the fact of this analyzer previously exported
// for obj into the fact argument, reporting whether one existed.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if obj == nil {
		return false
	}
	return p.Module.facts.lookup(p.Analyzer, obj, fact)
}

// ExportPackageFact associates fact with the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	p.Module.facts.export(p.Analyzer, p.Pkg, fact)
}

// ImportPackageFact copies the fact this analyzer exported for pkg into
// fact, reporting whether one existed.
func (p *Pass) ImportPackageFact(pkg *types.Package, fact Fact) bool {
	if pkg == nil {
		return false
	}
	return p.Module.facts.lookup(p.Analyzer, pkg, fact)
}

// AllObjectFacts returns every object fact this analyzer has exported
// so far, across all packages processed in the run.
func (p *Pass) AllObjectFacts() []ObjectFact {
	var out []ObjectFact
	for k, f := range p.Module.facts.m {
		if k.analyzer != p.Analyzer {
			continue
		}
		if obj, ok := k.key.(types.Object); ok {
			out = append(out, ObjectFact{Object: obj, Fact: f})
		}
	}
	return out
}
