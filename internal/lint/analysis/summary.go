// Per-function dataflow summaries, computed bottom-up over the call
// graph and memoized. A summary condenses what a callee does to the
// values that cross its boundary — which results carry pooled values,
// which parameters get released or deadline-armed, whether a dial (or a
// dial hidden arbitrarily deep in helpers) is reachable, whether the
// fault injector is consulted, and how the function terminates — so a
// caller's analyzer can reason about `v := helper()` without
// re-walking helper's body, across package boundaries.
//
// Summaries are deliberately presence-based ("releases the parameter on
// some path") rather than path-sensitive; the per-function checkers
// keep the path sensitivity, summaries carry the interprocedural step.
// Recursive call cycles are broken optimistically: a function in the
// cycle being computed contributes an empty summary, which can only
// suppress findings, never invent them.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"webcluster/internal/lint/lintutil"
	"webcluster/internal/lint/load"
)

// TermClass classifies how a function or goroutine body terminates.
type TermClass int

const (
	// TermBounded bodies run to completion: no unbounded loops, no
	// known-blocking calls.
	TermBounded TermClass = iota
	// TermSignal bodies loop or block, but have a reachable exit: a
	// return/break inside every unconditional loop, a range over a
	// channel (ends at close), or a receive of a signal channel.
	TermSignal
	// TermUnbounded bodies can run forever with no reachable exit.
	TermUnbounded
)

func (t TermClass) String() string {
	switch t {
	case TermBounded:
		return "bounded"
	case TermSignal:
		return "signal-terminated"
	default:
		return "unbounded"
	}
}

// Summary is the interprocedural digest of one declared function.
type Summary struct {
	Func *types.Func

	// ReturnsPooled: some return path hands the caller a value acquired
	// from a sync.Pool inside this function (directly or via a callee),
	// transferring the release obligation to the caller.
	ReturnsPooled bool
	// ReleasesParam[i]: parameter i is released (Release*/Put) on some
	// path, directly or via a callee.
	ReleasesParam []bool
	// ArmsParam[i]: a Set*Deadline is called on parameter i (or the
	// parameter is handed to a callee that arms it).
	ArmsParam []bool
	// ArmsRecv: same, for the method receiver.
	ArmsRecv bool
	// DialsConn: the first result is a freshly dialed outbound
	// connection (net.Dial* directly, or a callee with DialsConn).
	DialsConn bool
	// ArmsResult: the dialed result has a deadline armed before return,
	// so it arrives at the caller already bounded.
	ArmsResult bool

	// ConsultsInjector: the body calls a method on *faults.Injector.
	ConsultsInjector bool
	// DialsUnhooked: a net.Dial* site is reachable from this function
	// (through any chain of module callees) with no injector consult in
	// any body along the path. UnhookedVia names the chain for the
	// diagnostic.
	DialsUnhooked bool
	UnhookedVia   string
	// NetDialPos are direct net.Dial* sites in this body.
	NetDialPos []token.Pos

	// Body classification for goroutine-lifecycle checks.
	Body BodyClass
}

// BodyClass is the goroutine-lifecycle digest of one body.
type BodyClass struct {
	Term TermClass
	// Why explains a TermUnbounded classification for the diagnostic.
	Why string
	// JoinsWaitGroup: the body calls Done on a sync.WaitGroup, meaning
	// an owner can Wait for it.
	JoinsWaitGroup bool
	// CallsNoLeaks: the body calls testutil.NoLeaks, scoping every
	// goroutine spawned in it to the test's leak check.
	CallsNoLeaks bool
}

// Summary computes (and caches) fn's summary. Returns nil for functions
// whose declaring package is not in the module (stdlib, unresolved).
func (m *Module) Summary(fn *types.Func) *Summary {
	if fn == nil {
		return nil
	}
	if s, ok := m.summaries[fn]; ok {
		return s
	}
	node := m.Node(fn)
	if node == nil || node.Decl == nil || node.Decl.Body == nil {
		m.summaries[fn] = nil
		return nil
	}
	if m.inFlight[fn] {
		return nil // cycle: contribute nothing, never invent findings
	}
	m.inFlight[fn] = true
	s := m.computeSummary(node)
	delete(m.inFlight, fn)
	m.summaries[fn] = s
	return s
}

// qualified renders pkg.Func or pkg.(T).Method for diagnostics.
func qualified(fn *types.Func) string {
	name := fn.Name()
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			name = n.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		parts := strings.Split(fn.Pkg().Path(), "/")
		return parts[len(parts)-1] + "." + name
	}
	return name
}

func (m *Module) computeSummary(node *FuncNode) *Summary {
	fd, pkg := node.Decl, node.Pkg
	sig := node.Func.Type().(*types.Signature)
	s := &Summary{
		Func:          node.Func,
		ReleasesParam: make([]bool, sig.Params().Len()),
		ArmsParam:     make([]bool, sig.Params().Len()),
	}

	// Parameter and receiver objects by position.
	paramAt := make(map[types.Object]int)
	for i := 0; i < sig.Params().Len(); i++ {
		paramAt[sig.Params().At(i)] = i
	}
	var recvObj types.Object
	if sig.Recv() != nil {
		recvObj = sig.Recv()
	}
	// The syntactic receiver/parameter idents map to the same objects.
	rootOf := func(e ast.Expr) types.Object {
		root := lintutil.RootIdent(e)
		if root == nil {
			return nil
		}
		return lintutil.ObjectOf(pkg.Info, root)
	}

	// pooledVars: locals holding a pooled value acquired in this body.
	pooledVars := make(map[types.Object]bool)
	// dialedVars: locals holding a freshly dialed connection.
	dialedVars := make(map[types.Object]bool)
	armedDialed := false

	isPooledAcquire := func(e ast.Expr) bool {
		e = ast.Unparen(e)
		if ta, ok := e.(*ast.TypeAssertExpr); ok {
			e = ast.Unparen(ta.X)
		}
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return false
		}
		name := lintutil.CalleeName(call)
		if strings.HasPrefix(name, "Acquire") || strings.HasPrefix(name, "acquire") {
			return true
		}
		if name == "Get" {
			if recv := lintutil.Receiver(call); recv != nil && lintutil.IsSyncPool(lintutil.TypeOf(pkg.Info, recv)) {
				return true
			}
		}
		if callee := m.CalleeFunc(pkg.Info, call); callee != nil && callee != node.Func {
			if cs := m.Summary(callee); cs != nil && cs.ReturnsPooled {
				return true
			}
		}
		return false
	}

	isDial := func(call *ast.CallExpr) bool {
		if isNetDialCall(pkg.Info, call) {
			return true
		}
		name := lintutil.CalleeName(call)
		if name == "DialTimeout" || strings.Contains(name, "Dial") || strings.Contains(name, "dial") {
			// Name-shaped dial helpers count when they return a conn.
			if returnsConn(pkg, call) {
				return true
			}
		}
		if callee := m.CalleeFunc(pkg.Info, call); callee != nil && callee != node.Func {
			if cs := m.Summary(callee); cs != nil && cs.DialsConn {
				return true
			}
		}
		return false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			if len(v.Lhs) >= 1 {
				for i, lhs := range v.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					obj := lintutil.ObjectOf(pkg.Info, id)
					if obj == nil {
						continue
					}
					ri := i
					if len(v.Rhs) == 1 {
						ri = 0
					} else if i >= len(v.Rhs) {
						continue
					}
					rhs := ast.Unparen(v.Rhs[ri])
					if isPooledAcquire(rhs) {
						pooledVars[obj] = true
					}
					if call, ok := rhs.(*ast.CallExpr); ok && i == 0 && isDial(call) {
						dialedVars[obj] = true
					}
				}
			}
		case *ast.CallExpr:
			m.recordCallEffects(s, pkg, v, paramAt, recvObj, rootOf, dialedVars, &armedDialed)
		case *ast.ReturnStmt:
			// Only direct returns count: `return v` / `return acquire()`.
			// Wrapping the value in a composite literal transfers ownership
			// to the wrapper's own lifecycle (the conntrack PooledConn
			// pattern), which stays a per-function concern.
			for _, res := range v.Results {
				e := ast.Unparen(res)
				if ta, ok := e.(*ast.TypeAssertExpr); ok {
					e = ast.Unparen(ta.X)
				}
				switch x := e.(type) {
				case *ast.Ident:
					if obj := lintutil.ObjectOf(pkg.Info, x); obj != nil {
						if pooledVars[obj] {
							s.ReturnsPooled = true
						}
						if dialedVars[obj] {
							s.DialsConn = true
							if armedDialed {
								s.ArmsResult = true
							}
						}
					}
				case *ast.CallExpr:
					if isPooledAcquire(x) {
						s.ReturnsPooled = true
					}
					if isDial(x) {
						s.DialsConn = true
					}
				}
			}
		}
		return true
	})

	// Fault-hook digest: own dial sites, injector consults, and the
	// transitive unhooked-dial reachability.
	s.ConsultsInjector = consultsInjector(pkg, fd.Body, fd.Body)
	s.NetDialPos = netDialSites(pkg, fd.Body)
	if !s.ConsultsInjector {
		if len(s.NetDialPos) > 0 {
			s.DialsUnhooked = true
			s.UnhookedVia = qualified(node.Func)
		} else {
			for _, cs := range node.Calls {
				callee := m.Summary(cs.Callee.Func)
				if callee != nil && callee.DialsUnhooked {
					s.DialsUnhooked = true
					s.UnhookedVia = fmt.Sprintf("%s → %s", qualified(node.Func), callee.UnhookedVia)
					break
				}
			}
		}
	}

	s.Body = m.ClassifyBody(pkg, fd.Body)
	return s
}

// recordCallEffects updates s for one call: releases of parameters,
// deadline arming on parameters/receiver, arming of dialed locals.
func (m *Module) recordCallEffects(s *Summary, pkg *load.Package, call *ast.CallExpr,
	paramAt map[types.Object]int, recvObj types.Object,
	rootOf func(ast.Expr) types.Object, dialedVars map[types.Object]bool, armedDialed *bool) {

	name := lintutil.CalleeName(call)

	// Set*Deadline on a parameter, receiver, or dialed local.
	if name == "SetDeadline" || name == "SetReadDeadline" || name == "SetWriteDeadline" {
		if recv := lintutil.Receiver(call); recv != nil {
			obj := rootOf(recv)
			if obj != nil {
				if i, ok := paramAt[obj]; ok {
					s.ArmsParam[i] = true
				}
				if obj == recvObj {
					s.ArmsRecv = true
				}
				if dialedVars[obj] {
					*armedDialed = true
				}
			}
		}
		return
	}

	// Release of a parameter: Release*/release*/pool.Put with the param
	// as the released argument.
	isRelease := strings.HasPrefix(name, "Release") || strings.HasPrefix(name, "release")
	if name == "Put" {
		if recv := lintutil.Receiver(call); recv != nil && lintutil.IsSyncPool(lintutil.TypeOf(pkg.Info, recv)) {
			isRelease = true
		}
	}
	if isRelease && len(call.Args) > 0 {
		if obj := rootOf(call.Args[0]); obj != nil {
			if i, ok := paramAt[obj]; ok {
				s.ReleasesParam[i] = true
			}
		}
		return
	}

	// Delegation: handing a parameter to a callee that releases or arms
	// it transfers the effect up.
	callee := m.CalleeFunc(pkg.Info, call)
	if callee == nil || callee == s.Func {
		return
	}
	cs := m.Summary(callee)
	if cs == nil {
		return
	}
	for ai, arg := range call.Args {
		obj := rootOf(arg)
		if obj == nil {
			continue
		}
		pi := ai
		if sig, ok := callee.Type().(*types.Signature); ok && sig.Variadic() && pi >= sig.Params().Len() {
			pi = sig.Params().Len() - 1
		}
		if pi < len(cs.ReleasesParam) && cs.ReleasesParam[pi] {
			if i, ok := paramAt[obj]; ok {
				s.ReleasesParam[i] = true
			}
		}
		if pi < len(cs.ArmsParam) && cs.ArmsParam[pi] {
			if i, ok := paramAt[obj]; ok {
				s.ArmsParam[i] = true
			}
			if obj == recvObj {
				s.ArmsRecv = true
			}
			if dialedVars[obj] {
				*armedDialed = true
			}
		}
	}
	// Method call on a dialed local whose receiver gets armed inside.
	if cs.ArmsRecv {
		if recv := lintutil.Receiver(call); recv != nil {
			if obj := rootOf(recv); obj != nil && dialedVars[obj] {
				*armedDialed = true
			}
		}
	}
}

// isNetDialCall reports a direct net.Dial/DialTimeout/DialContext/DialTCP.
func isNetDialCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Dial", "DialTimeout", "DialContext", "DialTCP", "DialUDP", "DialIP":
	default:
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := lintutil.ObjectOf(info, id).(*types.PkgName)
	return ok && pn.Imported().Path() == "net"
}

// returnsConn reports whether call's (first) result implements net.Conn.
func returnsConn(pkg *load.Package, call *ast.CallExpr) bool {
	conn := lintutil.NetConnIface(pkg.Types)
	if conn == nil {
		return false
	}
	tv, ok := pkg.Info.Types[call]
	if !ok {
		return false
	}
	rt := tv.Type
	if tuple, ok := rt.(*types.Tuple); ok {
		if tuple.Len() == 0 {
			return false
		}
		rt = tuple.At(0).Type()
	}
	return lintutil.IsNetConn(rt, conn)
}

// netDialSites returns the direct net.Dial* positions in body, skipping
// nested function literals (their dials are attributed to the literal's
// own walk by faulthook).
func netDialSites(pkg *load.Package, body *ast.BlockStmt) []token.Pos {
	var out []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isNetDialCall(pkg.Info, call) {
			out = append(out, call.Pos())
		}
		return true
	})
	return out
}

// consultsInjector reports whether scope contains a method call on
// *faults.Injector, not counting nested function literals.
func consultsInjector(pkg *load.Package, scope ast.Node, self ast.Node) bool {
	found := false
	ast.Inspect(scope, func(x ast.Node) bool {
		if found {
			return false
		}
		if fl, ok := x.(*ast.FuncLit); ok && x != self {
			_ = fl
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv := lintutil.Receiver(call)
		if recv == nil {
			return true
		}
		t := lintutil.TypeOf(pkg.Info, recv)
		if t != nil && lintutil.IsNamed(t, "webcluster/internal/faults", "Injector") {
			found = true
		}
		return true
	})
	return found
}

// blockingExternals are well-known stdlib calls that block until an
// owner-side shutdown (server loops). A goroutine whose body reaches
// one needs join evidence; "the call returns eventually" is not
// something the analyzer can see.
func blockingExternal(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() != "net/http" {
		return false
	}
	switch fn.Name() {
	case "Serve", "ServeTLS", "ListenAndServe", "ListenAndServeTLS":
		return true
	}
	return false
}

// ClassifyBody computes the goroutine-lifecycle digest of one body
// (either a declared function's or a go-statement literal's).
func (m *Module) ClassifyBody(pkg *load.Package, body *ast.BlockStmt) BodyClass {
	bc := BodyClass{Term: TermBounded}
	sawSignal := false
	var inspect func(n ast.Node) bool
	inspect = func(n ast.Node) bool {
		if bc.Term == TermUnbounded {
			return false
		}
		switch v := n.(type) {
		case *ast.FuncLit:
			// A nested literal runs in its own context (it may be a
			// callback invoked elsewhere); its loops are not this body's.
			// Its go statements are collected by the graph walk.
			return false
		case *ast.GoStmt:
			// The spawned body's termination is the spawned goroutine's
			// problem (checked at its own site); only walk the arguments.
			for _, arg := range v.Call.Args {
				ast.Inspect(arg, inspect)
			}
			if _, ok := v.Call.Fun.(*ast.FuncLit); !ok {
				ast.Inspect(v.Call.Fun, inspect)
			}
			return false
		case *ast.ForStmt:
			if v.Cond == nil {
				if !loopHasExit(v.Body) {
					bc.Term = TermUnbounded
					bc.Why = "`for {}` loop with no reachable return or break"
					return false
				}
				sawSignal = true
			}
		case *ast.RangeStmt:
			if isChanType(lintutil.TypeOf(pkg.Info, v.X)) {
				// Ends when the channel is closed by the sender.
				sawSignal = true
			}
		case *ast.SelectStmt:
			if len(v.Body.List) == 0 {
				bc.Term = TermUnbounded
				bc.Why = "empty select blocks forever"
				return false
			}
		case *ast.UnaryExpr:
			if v.Op == token.ARROW && isSignalChan(lintutil.TypeOf(pkg.Info, v.X)) {
				sawSignal = true
			}
		case *ast.CallExpr:
			name := lintutil.CalleeName(v)
			if name == "Done" {
				if recv := lintutil.Receiver(v); recv != nil && lintutil.IsNamed(lintutil.TypeOf(pkg.Info, recv), "sync", "WaitGroup") {
					bc.JoinsWaitGroup = true
				}
			}
			if name == "NoLeaks" {
				if sel, ok := v.Fun.(*ast.SelectorExpr); ok {
					if id, ok := sel.X.(*ast.Ident); ok {
						if pn, ok := lintutil.ObjectOf(pkg.Info, id).(*types.PkgName); ok && strings.HasSuffix(pn.Imported().Path(), "testutil") {
							bc.CallsNoLeaks = true
						}
					}
				}
			}
			callee := m.CalleeFunc(pkg.Info, v)
			if callee != nil {
				if blockingExternal(callee) {
					bc.Term = TermUnbounded
					bc.Why = fmt.Sprintf("blocks in %s.%s until server shutdown", callee.Pkg().Name(), callee.Name())
					return false
				}
				if cs := m.Summary(callee); cs != nil {
					if cs.Body.JoinsWaitGroup {
						bc.JoinsWaitGroup = true
					}
					switch cs.Body.Term {
					case TermUnbounded:
						bc.Term = TermUnbounded
						bc.Why = fmt.Sprintf("calls %s, which %s", qualified(callee), cs.Body.Why)
						return false
					case TermSignal:
						sawSignal = true
					}
				}
			}
		}
		return true
	}
	ast.Inspect(body, inspect)
	if bc.Term == TermBounded && sawSignal {
		bc.Term = TermSignal
	}
	return bc
}

// loopHasExit reports whether an unconditional for body contains a
// reachable syntactic exit: a return, a break, or a call to a
// terminating runtime exit. Nested function literals are skipped (a
// return inside a closure does not exit the loop), and breaks belonging
// to nested loops/switches still count — they step toward this loop's
// own exit only when unlabeled at this level, but the approximation
// "some exit statement exists" is deliberately permissive: leakcheck
// flags loops with provably no way out.
func loopHasExit(body *ast.BlockStmt) bool {
	found := false
	depth := 0
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if found {
			return false
		}
		switch v := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			found = true
			return false
		case *ast.BranchStmt:
			if v.Tok == token.BREAK && depth == 0 || v.Tok == token.GOTO || v.Label != nil && v.Tok == token.BREAK {
				found = true
				return false
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			// break inside these binds to them, not to our loop.
			depth++
			switch s := n.(type) {
			case *ast.ForStmt:
				ast.Inspect(s.Body, walk)
			case *ast.RangeStmt:
				ast.Inspect(s.Body, walk)
			case *ast.SwitchStmt:
				ast.Inspect(s.Body, walk)
			case *ast.TypeSwitchStmt:
				ast.Inspect(s.Body, walk)
			case *ast.SelectStmt:
				ast.Inspect(s.Body, walk)
			}
			depth--
			return false
		case *ast.CallExpr:
			if isRuntimeExit(v) {
				found = true
				return false
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	return found
}

// isRuntimeExit matches os.Exit, log.Fatal*, panic — calls that end the
// goroutine (or process) abruptly but definitively.
func isRuntimeExit(call *ast.CallExpr) bool {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		name := fn.Sel.Name
		return name == "Exit" || strings.HasPrefix(name, "Fatal") || name == "Goexit"
	}
	return false
}

func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// isSignalChan matches the done-channel shapes: chan struct{} (any
// direction) — the conventional close-to-signal type — and context
// Done channels (<-chan struct{}).
func isSignalChan(t types.Type) bool {
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}
