// Package analysis is a minimal, dependency-free re-creation of the
// golang.org/x/tools/go/analysis API surface that distlint's analyzers
// are written against. The container this repo builds in has no module
// proxy access, so the real x/tools packages cannot be vendored; this
// package mirrors the shape of the upstream API (Analyzer, Pass,
// Diagnostic, Reportf) closely enough that the analyzers port to the
// upstream framework by changing one import line.
//
// Only the subset distlint needs is implemented: no facts, no analyzer
// dependencies, no SSA. Each analyzer receives one fully type-checked
// package per Pass and reports position-anchored diagnostics.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check: a name (the suppression key), a
// doc string explaining the invariant it enforces, and the Run function.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //distlint:ignore comments. Lower-case, no spaces.
	Name string
	// Doc is the invariant the analyzer machine-enforces and why it
	// exists; shown by `distlint -help`.
	Doc string
	// Run performs the check on one package and reports findings via
	// pass.Reportf.
	Run func(*Pass) error
}

// Diagnostic is one finding: a position in the analyzed package and a
// human-readable message.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one type-checked package through an analyzer run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diagnostics []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:     pos,
		Message: fmt.Sprintf(format, args...),
	})
}

// Run executes a on the package described by (fset, files, pkg, info)
// and returns its diagnostics.
func Run(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	return pass.diagnostics, nil
}
