// Package analysis is a minimal, dependency-free re-creation of the
// golang.org/x/tools/go/analysis API surface that distlint's analyzers
// are written against. The container this repo builds in has no module
// proxy access, so the real x/tools packages cannot be vendored; this
// package mirrors the shape of the upstream API (Analyzer, Pass,
// Diagnostic, Reportf, Fact) closely enough that the analyzers port to
// the upstream framework by changing one import line.
//
// Since distlint v2 the package is interprocedural: a Module holds a
// call graph and per-function summaries over every package of one lint
// run, passes carry the Module, and analyzers can export Facts on
// objects and packages that downstream passes import (see facts.go,
// callgraph.go, summary.go). Analyzer dependencies and SSA remain
// unimplemented.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"webcluster/internal/lint/load"
)

// Analyzer describes one static check: a name (the suppression key), a
// doc string explaining the invariant it enforces, and the Run function.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //distlint:ignore comments. Lower-case, no spaces.
	Name string
	// Doc is the invariant the analyzer machine-enforces and why it
	// exists; shown by `distlint -help`.
	Doc string
	// Run performs the check on one package and reports findings via
	// pass.Reportf.
	Run func(*Pass) error
	// FactTypes lists the fact types this analyzer exports/imports, as
	// zero values. Declaring them is what makes the driver run the
	// analyzer over every package in dependency order (facts must exist
	// for a package's imports before the package itself is analyzed).
	FactTypes []Fact
}

// Diagnostic is one finding: a position in the analyzed package and a
// human-readable message.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one type-checked package through an analyzer run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Module is the shared interprocedural state of the run: call graph,
	// summaries, facts. Always non-nil; single-package runs get a module
	// containing just that package.
	Module *Module
	// Unit is the loaded package under analysis (syntax + types + dir).
	Unit *load.Package

	diagnostics []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:     pos,
		Message: fmt.Sprintf(format, args...),
	})
}

// Run executes a on pkg within the module: the package is added to the
// call graph (idempotent), the pass sees the module's accumulated facts
// and summaries, and the diagnostics are returned.
func (m *Module) Run(a *Analyzer, pkg *load.Package) ([]Diagnostic, error) {
	m.Add(pkg)
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Module:    m,
		Unit:      pkg,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	return pass.diagnostics, nil
}

// Run executes a on a single package in a fresh one-package module.
// Kept for callers that analyze packages in isolation; interprocedural
// context (cross-package facts, lazily pulled dependencies) requires
// building a Module and using its Run.
func Run(a *Analyzer, pkg *load.Package) ([]Diagnostic, error) {
	return NewModule().Run(a, pkg)
}
