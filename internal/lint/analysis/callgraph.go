// Module-wide call graph: one node per declared function or method in
// any added package, one edge per statically resolvable call site.
// Function literals are folded into their enclosing declaration — a
// call made inside a closure is an edge from the declaring function —
// except `go` statements, which are collected separately as GoSites so
// leakcheck can reason about the spawned body rather than the spawner.
//
// Soundness limits (documented in DESIGN.md §15): calls through
// interface values, function-typed variables, and reflection produce no
// edges; the graph covers direct calls to named functions and methods
// only. That is enough for the invariants distlint enforces, which are
// phrased in terms of concrete helpers (dial wrappers, pool accessors,
// goroutine run loops).
package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"webcluster/internal/lint/load"
)

// Module is the interprocedural analysis state shared by every pass of
// a run: the packages added so far, the call graph over them, function
// summaries, and the fact store.
type Module struct {
	pkgs   []*load.Package
	byPath map[string]*load.Package

	nodes map[*types.Func]*FuncNode

	summaries map[*types.Func]*Summary
	inFlight  map[*types.Func]bool

	facts *factStore

	// Source resolves a module import path to an already-loaded package
	// so the graph can pull in dependencies lazily (the loader's cache).
	// May be nil; then only explicitly added packages have nodes.
	Source func(path string) *load.Package
}

// NewModule returns an empty module graph.
func NewModule() *Module {
	return &Module{
		byPath:    make(map[string]*load.Package),
		nodes:     make(map[*types.Func]*FuncNode),
		summaries: make(map[*types.Func]*Summary),
		inFlight:  make(map[*types.Func]bool),
		facts:     newFactStore(),
	}
}

// FuncNode is one call-graph node: a declared function or method with
// its body, the package it lives in, and its resolved edges.
type FuncNode struct {
	Func *types.Func
	Decl *ast.FuncDecl
	Pkg  *load.Package

	// Calls are the statically resolved call sites in the body,
	// including those inside nested function literals.
	Calls []*CallSite
	// CalledBy are the incoming edges from other module functions.
	CalledBy []*CallSite
	// Spawns are the go statements lexically inside the body.
	Spawns []*GoSite
}

// CallSite is one resolved call edge.
type CallSite struct {
	Caller *FuncNode
	Callee *FuncNode
	Call   *ast.CallExpr
	// InGo marks call sites inside a `go` statement's function literal;
	// summaries attribute those to the spawned goroutine, not the
	// calling frame.
	InGo bool
}

// GoSite is one `go` statement: either a function literal (Body set) or
// a call to a resolvable function (Callee set); both nil means the
// spawned callee could not be resolved (interface method, function
// value).
type GoSite struct {
	Stmt   *ast.GoStmt
	Owner  *FuncNode
	Body   *ast.BlockStmt
	Callee *FuncNode
}

// Packages returns the added packages in insertion order.
func (m *Module) Packages() []*load.Package { return m.pkgs }

// Package returns the added package with the given import path, nil if
// absent.
func (m *Module) Package(path string) *load.Package { return m.byPath[path] }

// Node returns the call-graph node for fn, or nil when fn's declaring
// package has not been added (stdlib, unresolved).
func (m *Module) Node(fn *types.Func) *FuncNode {
	if fn == nil {
		return nil
	}
	n := m.nodes[fn]
	if n == nil && m.Source != nil {
		// Lazily pull in a module-local package we have loaded but not
		// added: summaries chase helpers wherever they live.
		if pkg := fn.Pkg(); pkg != nil {
			if lp := m.Source(pkg.Path()); lp != nil && m.byPath[lp.Path] == nil {
				m.Add(lp)
				n = m.nodes[fn]
			}
		}
	}
	return n
}

// NodeForDecl returns the node for a function declaration of pkg, nil
// when the declaration did not type-check to a function object.
func (m *Module) NodeForDecl(pkg *load.Package, fd *ast.FuncDecl) *FuncNode {
	fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	return m.Node(fn)
}

// Add indexes pkg into the graph: creates nodes for its declarations,
// then resolves call edges and go statements. Idempotent per path.
func (m *Module) Add(pkg *load.Package) {
	if m.byPath[pkg.Path] != nil {
		return
	}
	m.byPath[pkg.Path] = pkg
	m.pkgs = append(m.pkgs, pkg)

	// Pass 1: nodes for every declared function and method.
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			m.nodes[fn] = &FuncNode{Func: fn, Decl: fd, Pkg: pkg}
		}
	}

	// Pass 2: edges and go sites.
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			m.index(m.nodes[fn], fd.Body, pkg)
		}
	}
}

// index walks one declared body recording call sites and go statements.
func (m *Module) index(node *FuncNode, body *ast.BlockStmt, pkg *load.Package) {
	var goDepth int
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.GoStmt:
			gs := &GoSite{Stmt: v, Owner: node}
			if fl, ok := v.Call.Fun.(*ast.FuncLit); ok {
				gs.Body = fl.Body
			} else if callee := m.CalleeFunc(pkg.Info, v.Call); callee != nil {
				gs.Callee = m.Node(callee)
				if gs.Callee != nil {
					m.edge(node, gs.Callee, v.Call, false)
				}
			}
			node.Spawns = append(node.Spawns, gs)
			// Walk the spawned body with InGo marking: its calls belong
			// to the goroutine for summary purposes.
			if gs.Body != nil {
				goDepth++
				ast.Inspect(gs.Body, walk)
				goDepth--
			}
			for _, arg := range v.Call.Args {
				ast.Inspect(arg, walk)
			}
			return false
		case *ast.CallExpr:
			if callee := m.CalleeFunc(pkg.Info, v); callee != nil {
				if cn := m.Node(callee); cn != nil {
					m.edge(node, cn, v, goDepth > 0)
				}
			}
			return true
		}
		return true
	}
	ast.Inspect(body, walk)
}

func (m *Module) edge(caller, callee *FuncNode, call *ast.CallExpr, inGo bool) {
	cs := &CallSite{Caller: caller, Callee: callee, Call: call, InGo: inGo}
	caller.Calls = append(caller.Calls, cs)
	callee.CalledBy = append(callee.CalledBy, cs)
}

// CalleeFunc statically resolves a call's target to a *types.Func:
// direct function calls, method calls on concrete receivers, and
// method values. Interface dispatch and function-typed values return
// nil.
func (m *Module) CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		// Interface method calls resolve to the interface's *types.Func;
		// those have no body anywhere, and Node() will return nil, which
		// is the unresolved-edge behavior we want.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// DepOrder returns the added packages topologically sorted so that
// every package appears after the module packages it imports. Analyzer
// runs follow this order, which is what makes facts flow from callee
// packages to caller packages.
func (m *Module) DepOrder() []*load.Package {
	var order []*load.Package
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(p *load.Package)
	visit = func(p *load.Package) {
		switch state[p.Path] {
		case 1, 2:
			return
		}
		state[p.Path] = 1
		imps := p.Types.Imports()
		sort.Slice(imps, func(i, j int) bool { return imps[i].Path() < imps[j].Path() })
		for _, imp := range imps {
			if dep := m.byPath[imp.Path()]; dep != nil {
				visit(dep)
			}
		}
		state[p.Path] = 2
		order = append(order, p)
	}
	sorted := append([]*load.Package(nil), m.pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })
	for _, p := range sorted {
		visit(p)
	}
	return order
}

// PathHasPrefix reports whether the slash-separated import path has the
// given prefix as a path segment boundary.
func PathHasPrefix(path, prefix string) bool {
	return path == prefix || strings.HasPrefix(path, prefix+"/")
}
