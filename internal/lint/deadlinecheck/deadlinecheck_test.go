package deadlinecheck_test

import (
	"testing"

	"webcluster/internal/lint/deadlinecheck"
	"webcluster/internal/lint/linttest"
)

func TestDeadlineCheck(t *testing.T) {
	linttest.Run(t, "testdata/a", deadlinecheck.Analyzer)
}
