package deadlinecheck_test

import (
	"testing"

	"webcluster/internal/lint/deadlinecheck"
	"webcluster/internal/lint/linttest"
)

func TestDeadlineCheck(t *testing.T) {
	linttest.Run(t, "testdata/a", deadlinecheck.Analyzer)
}

// TestDeadlineCheckCrossPackage pins the interprocedural upgrades: a
// dial helper recognized by summary rather than name, and an arming
// helper recognized by ArmsParam rather than a Set*Deadline spelling.
func TestDeadlineCheckCrossPackage(t *testing.T) {
	linttest.RunDirs(t, deadlinecheck.Analyzer, "testdata/netx", "testdata/c")
}
