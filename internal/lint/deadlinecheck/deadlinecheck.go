// Package deadlinecheck enforces the bounded-I/O rule the chaos suite
// depends on: every outbound connection in the data and management
// planes must have a deadline armed before it is read or written, so a
// wedged peer degrades into a timeout instead of a stuck goroutine.
//
// Three rules, all lexical and deliberately permissive (a deadline
// armed anywhere earlier in the function counts for everything after):
//
//  1. A bare net.Dial call is always flagged — use net.DialTimeout or a
//     dialer that arms a deadline on the result.
//  2. A connection dialed locally (any call whose first result is a
//     net.Conn, except Accept) must have SetDeadline /
//     SetReadDeadline / SetWriteDeadline called on it — or be handed to
//     a function that arms a deadline on its parameter — before any
//     I/O through it or a wrapper derived from it (bufio.NewReader,
//     json.NewEncoder, ...). Returning the connection or storing it
//     into a struct transfers the obligation to the new owner.
//
//     Since distlint v2 this rule is interprocedural: "dialed locally"
//     includes any helper — in any module package, under any name —
//     whose call-graph summary says it returns a freshly dialed
//     connection (the old engine keyed on "Dial" appearing in the
//     callee name), a helper that arms the deadline inside itself
//     satisfies the obligation wherever it lives, and a dial helper
//     that arms the result before returning hands back a connection
//     that is already bounded.
//  3. A method on a type with a direct net.Conn field that performs
//     I/O rooted at the receiver must contain a Set*Deadline call.
//     Methods named Close*, or named like I/O primitives (thin
//     delegation wrappers such as a PooledConn.Read), are exempt —
//     there the obligation sits with the caller.
package deadlinecheck

import (
	"go/ast"
	"go/types"
	"strings"

	"webcluster/internal/lint/analysis"
	"webcluster/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "deadlinecheck",
	Doc: "check that outbound net.Conn dial/read/write sites arm a " +
		"deadline on every path before blocking",
	Run: run,
}

// ioNames are method names that perform (possibly blocking) I/O when
// invoked on a connection or a wrapper around one.
var ioNames = map[string]bool{
	"Read": true, "Write": true, "ReadByte": true, "ReadString": true,
	"ReadRune": true, "ReadSlice": true, "ReadLine": true, "ReadFull": true,
	"WriteString": true, "WriteByte": true, "WriteTo": true, "ReadFrom": true,
	"Encode": true, "Decode": true, "Flush": true, "Peek": true,
}

// armNames arm a deadline.
var armNames = map[string]bool{
	"SetDeadline": true, "SetReadDeadline": true, "SetWriteDeadline": true,
}

// safeNames neither block nor need a deadline.
var safeNames = map[string]bool{
	"Close": true, "CloseRead": true, "CloseWrite": true,
	"LocalAddr": true, "RemoteAddr": true, "SetNoDelay": true,
	"SetKeepAlive": true, "SetKeepAlivePeriod": true, "SetLinger": true,
	"delete": true, "len": true, "cap": true, "append": true,
}

func run(pass *analysis.Pass) error {
	conn := lintutil.NetConnIface(pass.Pkg)
	if conn == nil {
		return nil // package graph has no net; nothing to check
	}
	armers := armingFuncs(pass, conn)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBareDial(pass, fd.Body)
			(&connTracker{pass: pass, conn: conn, armers: armers,
				state: make(map[types.Object]*connState)}).walkBlock(fd.Body)
			checkConnFieldMethod(pass, fd, conn)
		}
	}
	return nil
}

// --- rule 1: bare net.Dial ---

func checkBareDial(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Dial" {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := lintutil.ObjectOf(pass.TypesInfo, id).(*types.PkgName); ok && pn.Imported().Path() == "net" {
				pass.Reportf(call.Pos(), "bare net.Dial has no connect timeout; use net.DialTimeout (or a dialer that arms a deadline)")
			}
		}
		return true
	})
}

// --- rule 2: locally dialed connections ---

// armingFuncs returns the same-package functions that arm a deadline on
// one of their parameters (or their receiver): handing a connection to
// one of them satisfies the obligation.
func armingFuncs(pass *analysis.Pass, conn *types.Interface) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			owned := make(map[types.Object]bool)
			for _, fl := range fieldLists(fd) {
				for _, f := range fl.List {
					for _, name := range f.Names {
						if o := pass.TypesInfo.Defs[name]; o != nil {
							owned[o] = true
						}
					}
				}
			}
			arms := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !armNames[lintutil.CalleeName(call)] {
					return true
				}
				if root := lintutil.RootIdent(lintutil.Receiver(call)); root != nil {
					if owned[lintutil.ObjectOf(pass.TypesInfo, root)] {
						arms = true
					}
				}
				return true
			})
			if arms {
				if o := pass.TypesInfo.Defs[fd.Name]; o != nil {
					out[o] = true
				}
			}
		}
	}
	return out
}

func fieldLists(fd *ast.FuncDecl) []*ast.FieldList {
	fls := []*ast.FieldList{fd.Type.Params}
	if fd.Recv != nil {
		fls = append(fls, fd.Recv)
	}
	var out []*ast.FieldList
	for _, fl := range fls {
		if fl != nil {
			out = append(out, fl)
		}
	}
	return out
}

type connState struct {
	name  string
	armed bool
	// root follows wrapper derivations back to the dialed connection.
	root types.Object
}

type connTracker struct {
	pass   *analysis.Pass
	conn   *types.Interface
	armers map[types.Object]bool
	state  map[types.Object]*connState
}

// walkBlock visits statements (and nested function literals) in source
// order; connection state is purely lexical.
func (t *connTracker) walkBlock(b *ast.BlockStmt) {
	ast.Inspect(b, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			t.handleAssign(st)
			return false
		case *ast.ExprStmt:
			t.handleExpr(st.X)
			return false
		case *ast.ReturnStmt:
			// Returning the connection (or a struct holding it) hands it
			// to the caller — but returning the *result of I/O on it* is
			// still a use, so classify calls before dropping.
			for _, res := range st.Results {
				t.handleExpr(res)
				t.dropMentioned(res)
			}
			return false
		case *ast.DeferStmt:
			t.handleCall(st.Call, true)
			return false
		case *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt,
			*ast.TypeSwitchStmt, *ast.SelectStmt, *ast.BlockStmt,
			*ast.CaseClause, *ast.CommClause, *ast.LabeledStmt,
			*ast.GoStmt, *ast.SendStmt, *ast.IncDecStmt, *ast.DeclStmt:
			return true // descend; nested stmts handled above
		}
		return true
	})
}

// lookup resolves an expression to tracked connection state by its root
// identifier.
func (t *connTracker) lookup(e ast.Expr) *connState {
	root := lintutil.RootIdent(e)
	if root == nil {
		return nil
	}
	obj := lintutil.ObjectOf(t.pass.TypesInfo, root)
	if obj == nil {
		return nil
	}
	cs := t.state[obj]
	if cs != nil && cs.root != nil {
		if rootCS := t.state[cs.root]; rootCS != nil {
			return rootCS
		}
	}
	return cs
}

func (t *connTracker) drop(cs *connState) {
	for obj, s := range t.state {
		if s == cs || s.root != nil && t.state[s.root] == cs {
			delete(t.state, obj)
		}
	}
}

// dropMentioned stops tracking any connection appearing inside e — used
// at ownership-transfer points (returns, stores, composite literals).
func (t *connTracker) dropMentioned(e ast.Node) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := lintutil.ObjectOf(t.pass.TypesInfo, id); obj != nil {
				if cs := t.state[obj]; cs != nil {
					t.drop(cs)
				}
			}
		}
		return true
	})
}

func (t *connTracker) handleAssign(st *ast.AssignStmt) {
	// Ownership transfer: a tracked connection written into a field,
	// element, or composite literal belongs to the new holder.
	for _, rhs := range st.Rhs {
		if _, ok := ast.Unparen(rhs).(*ast.CompositeLit); ok {
			t.dropMentioned(rhs)
		}
	}
	for i, lhs := range st.Lhs {
		if _, plain := lhs.(*ast.Ident); !plain && i < len(st.Rhs) {
			t.dropMentioned(st.Rhs[i])
		}
	}
	// Rewrap: conn = in.Conn("tag", conn) keeps identity and state.
	if len(st.Lhs) == 1 && len(st.Rhs) == 1 {
		if id, ok := st.Lhs[0].(*ast.Ident); ok {
			if obj := lintutil.ObjectOf(t.pass.TypesInfo, id); obj != nil && t.state[obj] != nil {
				if call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr); ok && mentions(t.pass, call, obj) {
					return
				}
			}
		}
	}
	// Derivation and acquisition; RHS calls not consumed as a dial or a
	// wrapper constructor still get classified as potential I/O
	// (covers `_, _ = io.Copy(server, client)` and friends).
	consumed := make(map[int]bool)
	for i, lhs := range st.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := lintutil.ObjectOf(t.pass.TypesInfo, id)
		if obj == nil {
			continue
		}
		ri := i
		if len(st.Lhs) != len(st.Rhs) {
			if len(st.Rhs) != 1 {
				continue
			}
			ri = 0
		}
		rhs := ast.Unparen(st.Rhs[ri])
		// v := conn, tc := conn.(*net.TCPConn), br := bufio.NewReader(conn):
		// the new variable is a window onto the same connection.
		if cs := t.wrapperSource(rhs); cs != nil {
			t.state[obj] = &connState{name: id.Name, root: rootObj(t, cs)}
			consumed[ri] = true
			continue
		}
		// conn, err := dial(...): new tracked connection. A dial helper
		// that arms the result before returning hands back a connection
		// that is already bounded.
		if call, ok := rhs.(*ast.CallExpr); ok && i == 0 {
			if dial, armed := t.isConnDial(call); dial {
				t.state[obj] = &connState{name: id.Name, armed: armed}
				consumed[ri] = true
			}
		}
	}
	for i, rhs := range st.Rhs {
		if consumed[i] {
			continue
		}
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
			t.handleCall(call, false)
		}
	}
}

func rootObj(t *connTracker, cs *connState) types.Object {
	for obj, s := range t.state {
		if s == cs {
			return obj
		}
	}
	return nil
}

// wrapperSource reports the tracked connection e is a pure window onto:
// the connection itself, a type assertion on it, or a New*/Acquire*
// constructor taking it.
func (t *connTracker) wrapperSource(e ast.Expr) *connState {
	switch x := e.(type) {
	case *ast.Ident:
		if obj := lintutil.ObjectOf(t.pass.TypesInfo, x); obj != nil {
			return t.state[obj]
		}
	case *ast.TypeAssertExpr:
		return t.lookup(x.X)
	case *ast.CallExpr:
		name := lintutil.CalleeName(x)
		if strings.HasPrefix(name, "New") || strings.HasPrefix(name, "Acquire") {
			for _, arg := range x.Args {
				if cs := t.lookup(arg); cs != nil {
					return cs
				}
			}
		}
	}
	return nil
}

// isConnDial reports whether call produces a new outbound connection,
// and whether it arrives with a deadline already armed. Two paths: the
// callee's call-graph summary says it returns a freshly dialed
// connection (any name, any module package — ArmsResult carries the
// already-armed case), or the callee is dial-shaped by name (net.Dial*,
// a Dialer field) with a first result implementing net.Conn. Accepted
// and re-wrapped connections (faults.Conn) are deliberately not treated
// as new dials: the former are inbound, the latter keep the original's
// identity.
func (t *connTracker) isConnDial(call *ast.CallExpr) (dial, armed bool) {
	name := lintutil.CalleeName(call)
	if name == "Accept" || name == "AcceptTCP" {
		return false, false
	}
	if fn := t.pass.Module.CalleeFunc(t.pass.TypesInfo, call); fn != nil {
		if s := t.pass.Module.Summary(fn); s != nil && s.DialsConn {
			return true, s.ArmsResult
		}
	}
	if !strings.Contains(name, "Dial") && !strings.Contains(name, "dial") {
		return false, false
	}
	tv, ok := t.pass.TypesInfo.Types[call]
	if !ok {
		return false, false
	}
	rt := tv.Type
	if tuple, ok := rt.(*types.Tuple); ok {
		if tuple.Len() == 0 {
			return false, false
		}
		rt = tuple.At(0).Type()
	}
	return lintutil.IsNetConn(rt, t.conn), false
}

func (t *connTracker) handleExpr(e ast.Expr) {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		t.handleCall(call, false)
	}
}

// handleCall classifies one call against the tracked connections:
// arming, safe, ownership transfer to an arming function, or an I/O use
// that requires an armed deadline.
func (t *connTracker) handleCall(call *ast.CallExpr, deferred bool) {
	name := lintutil.CalleeName(call)
	if recv := lintutil.Receiver(call); recv != nil {
		if cs := t.lookup(recv); cs != nil {
			switch {
			case armNames[name]:
				cs.armed = true
			case safeNames[name]:
			default:
				// A method that arms a deadline on its own receiver
				// (wherever it is declared) satisfies the obligation.
				if fn := t.pass.Module.CalleeFunc(t.pass.TypesInfo, call); fn != nil {
					if s := t.pass.Module.Summary(fn); s != nil && s.ArmsRecv {
						cs.armed = true
						return
					}
				}
				if !cs.armed && !deferred {
					t.pass.Reportf(call.Pos(), "I/O on connection %q before any deadline is armed; call SetDeadline (or hand it to an owner that does)", cs.name)
					cs.armed = true // one report per connection path
				}
			}
			return
		}
	}
	// Nested function literal arguments are walked by the outer
	// inspector; here, classify direct connection arguments.
	for _, arg := range call.Args {
		cs := t.lookup(arg)
		if cs == nil {
			if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
				for _, ia := range inner.Args {
					if ics := t.lookup(ia); ics != nil {
						cs = ics
						break
					}
				}
			}
		}
		if cs == nil {
			continue
		}
		if safeNames[name] || armNames[name] {
			continue
		}
		// Handing the connection to a function that arms a deadline on
		// it transfers the obligation — same-package armers via the
		// lexical scan, everything else via call-graph summaries.
		if callee := t.calleeObj(call); callee != nil && t.armers[callee] {
			t.drop(cs)
			continue
		}
		if fn := t.pass.Module.CalleeFunc(t.pass.TypesInfo, call); fn != nil {
			if s := t.pass.Module.Summary(fn); s != nil && t.armsArg(call, cs, s.ArmsParam) {
				t.drop(cs)
				continue
			}
		}
		if strings.HasPrefix(name, "New") || strings.HasPrefix(name, "Acquire") {
			continue // constructor — wrapper tracked at the assignment
		}
		if !cs.armed && !deferred {
			t.pass.Reportf(call.Pos(), "connection %q passed to %s before any deadline is armed; call SetDeadline first or route it through an arming owner", cs.name, name)
			cs.armed = true
		}
	}
}

// armsArg reports whether cs is passed at a parameter position the
// callee's summary marks as deadline-armed.
func (t *connTracker) armsArg(call *ast.CallExpr, cs *connState, armsParam []bool) bool {
	for i, arg := range call.Args {
		if i >= len(armsParam) || !armsParam[i] {
			continue
		}
		if t.lookup(arg) == cs {
			return true
		}
	}
	return false
}

func (t *connTracker) calleeObj(call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return lintutil.ObjectOf(t.pass.TypesInfo, fn)
	case *ast.SelectorExpr:
		return lintutil.ObjectOf(t.pass.TypesInfo, fn.Sel)
	}
	return nil
}

func mentions(pass *analysis.Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok && lintutil.ObjectOf(pass.TypesInfo, id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// --- rule 3: methods on connection-backed types ---

func checkConnFieldMethod(pass *analysis.Pass, fd *ast.FuncDecl, conn *types.Interface) {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return
	}
	if strings.HasPrefix(fd.Name.Name, "Close") || ioNames[fd.Name.Name] {
		return
	}
	recvType := lintutil.TypeOf(pass.TypesInfo, fd.Recv.List[0].Type)
	if recvType == nil || !hasConnField(recvType, conn) {
		return
	}
	var recvObj types.Object
	if len(fd.Recv.List[0].Names) == 1 {
		recvObj = pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
	}
	if recvObj == nil {
		return
	}
	armed := false
	var firstIO *ast.CallExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := lintutil.CalleeName(call)
		recv := lintutil.Receiver(call)
		if recv == nil {
			return true
		}
		root := lintutil.RootIdent(recv)
		if root == nil || lintutil.ObjectOf(pass.TypesInfo, root) != recvObj {
			return true
		}
		switch {
		case armNames[name]:
			armed = true
		case ioNames[name]:
			if firstIO == nil {
				firstIO = call
			}
		}
		return true
	})
	if firstIO != nil && !armed {
		pass.Reportf(firstIO.Pos(), "method %s does I/O on its connection-backed receiver without arming a deadline; a wedged peer blocks this call forever", fd.Name.Name)
	}
}

// hasConnField reports whether t (a struct, possibly behind a pointer)
// has a direct field implementing net.Conn.
func hasConnField(t types.Type, conn *types.Interface) bool {
	st, ok := lintutil.Deref(t).Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if lintutil.IsNetConn(st.Field(i).Type(), conn) {
			return true
		}
	}
	return false
}
