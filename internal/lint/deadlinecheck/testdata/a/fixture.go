// Fixture for the deadlinecheck analyzer: bare dials, unarmed I/O on
// locally dialed connections and their wrappers, unarmed I/O in
// connection-backed methods (all flagged); armed I/O, hand-off to an
// arming owner, and ownership transfer (all allowed).
package fixture

import (
	"bufio"
	"net"
	"time"
)

// --- rule 1: bare net.Dial ---

func bareDial(addr string) (net.Conn, error) {
	return net.Dial("tcp", addr) // want `bare net.Dial has no connect timeout`
}

// --- rule 2: locally dialed connections ---

func unarmedRead(addr string, buf []byte) error {
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	_, err = conn.Read(buf) // want `I/O on connection "conn" before any deadline is armed`
	return err
}

func unarmedWrapper(addr string) (string, error) {
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return "", err
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	return br.ReadString('\n') // want `I/O on connection "conn" before any deadline is armed`
}

func unarmedHelper(addr string, buf []byte) error {
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	return readInto(conn, buf) // want `connection "conn" passed to readInto before any deadline is armed`
}

// readInto does not arm a deadline, so handing a connection to it does
// not discharge the obligation.
func readInto(conn net.Conn, buf []byte) error {
	_, err := conn.Read(buf)
	return err
}

func armedRead(addr string, buf []byte) error {
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(time.Second)); err != nil {
		return err
	}
	_, err = conn.Read(buf)
	return err
}

func armedWrapper(addr string) (string, error) {
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return "", err
	}
	defer conn.Close()
	if err := conn.SetReadDeadline(time.Now().Add(time.Second)); err != nil {
		return "", err
	}
	br := bufio.NewReader(conn)
	return br.ReadString('\n')
}

// armsParam arms a deadline on its parameter, so it is a sanctioned
// owner for freshly dialed connections.
func armsParam(conn net.Conn, buf []byte) error {
	if err := conn.SetDeadline(time.Now().Add(time.Second)); err != nil {
		return err
	}
	_, err := conn.Read(buf)
	return err
}

func handoffToArmingOwner(addr string, buf []byte) error {
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	return armsParam(conn, buf)
}

type holder struct {
	conn net.Conn
}

// ownershipTransfer stores the dialed connection into a returned
// struct; the obligation moves to the new owner's methods.
func ownershipTransfer(addr string) (*holder, error) {
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return nil, err
	}
	return &holder{conn: conn}, nil
}

// --- rule 3: connection-backed methods ---

func (h *holder) badCall(buf []byte) error {
	_, err := h.conn.Read(buf) // want `method badCall does I/O on its connection-backed receiver without arming a deadline`
	return err
}

func (h *holder) goodCall(buf []byte) error {
	if err := h.conn.SetDeadline(time.Now().Add(time.Second)); err != nil {
		return err
	}
	_, err := h.conn.Read(buf)
	return err
}

// Close needs no deadline.
func (h *holder) Close() error { return h.conn.Close() }

// Read is a thin delegation wrapper (the type itself acts as a
// connection); the deadline obligation sits with its callers.
func (h *holder) Read(p []byte) (int, error) { return h.conn.Read(p) }
