// Package netx is the helper side of the deadlinecheck cross-package
// fixture. Connect has no "dial" in its name and WithDeadline is not a
// Set*Deadline method, so the pre-v2 engine — which keyed on those
// spellings inside the body under analysis — provably missed both the
// obligation Connect creates and the discharge WithDeadline provides.
// v2 consults the call-graph summaries: DialsConn on Connect, ArmsParam
// on WithDeadline.
package netx

import (
	"net"
	"time"
)

// Connect opens a TCP connection with a bounded connect timeout; the
// caller owns arming the I/O deadline.
func Connect(addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, time.Second)
}

// WithDeadline arms a total deadline on behalf of the caller.
func WithDeadline(c net.Conn) error {
	return c.SetDeadline(time.Now().Add(time.Second))
}
