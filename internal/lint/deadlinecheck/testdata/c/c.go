// Cross-package fixture for deadlinecheck: the connection below is
// obtained through netx.Connect, whose name carries no "dial" — the
// pre-v2 engine recognized dials only by that spelling in the analyzed
// body, so the unarmed read was provably unreportable. Likewise the
// armed variant is discharged by netx.WithDeadline, which is not a
// Set*Deadline call; only its ArmsParam summary reveals the arming.
package fixture

import (
	"webcluster/internal/lint/deadlinecheck/testdata/netx"
)

// --- flagged ---

func unarmedRead(addr string, buf []byte) error {
	conn, err := netx.Connect(addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	_, err = conn.Read(buf) // want `I/O on connection "conn" before any deadline is armed`
	return err
}

// --- allowed ---

func armedByHelper(addr string, buf []byte) error {
	conn, err := netx.Connect(addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := netx.WithDeadline(conn); err != nil {
		return err
	}
	_, err = conn.Read(buf)
	return err
}
