// Package linttest runs one analyzer over a fixture directory and
// checks its diagnostics against want comments, mirroring the
// golang.org/x/tools/go/analysis/analysistest contract:
//
//	badCall() // want `exact diagnostic regexp`
//
// Each diagnostic must match a want comment on its line, and each want
// comment must be matched by a diagnostic; any mismatch fails the test.
// Fixtures live under the analyzer package's testdata/ directory (one
// sub-directory per fixture package) and may import webcluster/...
// packages, which resolve against the enclosing module.
//
// Fixture packages load under their real module import path
// (webcluster/internal/lint/<analyzer>/testdata/src/<pkg>), so fixtures
// can import each other: RunDirs analyzes several fixture packages in
// one interprocedural run, with want comments honored in every one —
// that is how the cross-package fixtures demonstrate violations the
// old per-package engine could not see. go build/test never descend
// into testdata, so deliberately broken fixtures cannot affect tier-1.
package linttest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"webcluster/internal/lint/analysis"
	"webcluster/internal/lint/distlint"
	"webcluster/internal/lint/load"
)

var (
	loaderOnce sync.Once
	loader     *load.Loader
	loaderErr  error
)

// sharedLoader returns a process-wide loader rooted at the enclosing
// module, so every fixture in a test binary shares one type-checked
// standard library.
func sharedLoader() (*load.Loader, error) {
	loaderOnce.Do(func() {
		wd, err := os.Getwd()
		if err != nil {
			loaderErr = err
			return
		}
		loader, loaderErr = load.NewLoaderAt(wd)
	})
	return loader, loaderErr
}

// want is one expectation parsed from a fixture comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile("//\\s*want\\s+(.*)$")

// Run loads the fixture package in dir (relative to the test's working
// directory), applies a to it, and reports every divergence between the
// diagnostics and the fixture's want comments via t.Errorf.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	RunDirs(t, a, dir)
}

// RunDirs loads one fixture package per directory (dependency packages
// first) and applies a to all of them in a single interprocedural run:
// one module, shared facts and summaries, packages analyzed in
// dependency order. Want comments are honored in every package, so a
// cross-package fixture can pin both the helper-side and caller-side
// diagnostics.
func RunDirs(t *testing.T, a *analysis.Analyzer, dirs ...string) {
	t.Helper()
	l, err := sharedLoader()
	if err != nil {
		t.Fatalf("linttest: creating loader: %v", err)
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	root, modPath, err := load.FindModule(wd)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	var pkgs []*load.Package
	var wants []*want
	for _, dir := range dirs {
		abs, err := filepath.Abs(dir)
		if err != nil {
			t.Fatalf("linttest: %v", err)
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			t.Fatalf("linttest: fixture %s is outside module root %s", dir, root)
		}
		pkg, err := l.LoadDir(abs, modPath+"/"+filepath.ToSlash(rel))
		if err != nil {
			t.Fatalf("linttest: loading fixture %s: %v", dir, err)
		}
		ws, err := collectWants(pkg)
		if err != nil {
			t.Fatalf("linttest: %v", err)
		}
		wants = append(wants, ws...)
		pkgs = append(pkgs, pkg)
	}
	r := distlint.NewRunner(l, []*analysis.Analyzer{a})
	r.Unscoped = true
	findings, err := r.Run(pkgs...)
	if err != nil {
		t.Fatalf("linttest: running %s: %v", a.Name, err)
	}
	for _, f := range findings {
		if !claim(wants, f) {
			t.Errorf("%s: unexpected diagnostic: %s", posString(f), f.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", filepath.Base(w.file), w.line, w.raw)
		}
	}
}

// claim marks the first unmatched want on the finding's line whose
// regexp matches the message, returning false when none does.
func claim(wants []*want, f distlint.Finding) bool {
	for _, w := range wants {
		if w.matched || w.file != f.Pos.Filename || w.line != f.Pos.Line {
			continue
		}
		if w.re.MatchString(f.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

func posString(f distlint.Finding) string {
	return fmt.Sprintf("%s:%d", filepath.Base(f.Pos.Filename), f.Pos.Line)
}

// collectWants parses every `// want "re" ...` comment in the package.
// Expectations use double-quoted Go strings or backquoted raw strings.
func collectWants(pkg *load.Package) ([]*want, error) {
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				patterns, err := splitPatterns(m[1])
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %v", pos.Filename, pos.Line, err)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, p, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: p})
				}
			}
		}
	}
	return wants, nil
}

// splitPatterns tokenizes the payload of a want comment into its quoted
// regexp strings.
func splitPatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) {
				if s[end] == '\\' {
					end += 2
					continue
				}
				if s[end] == '"' {
					break
				}
				end++
			}
			if end >= len(s) {
				return nil, fmt.Errorf("unterminated want pattern %q", s)
			}
			p, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, fmt.Errorf("bad want pattern %q: %v", s[:end+1], err)
			}
			out = append(out, p)
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated want pattern %q", s)
			}
			out = append(out, s[1:end+1])
			s = strings.TrimSpace(s[end+2:])
		default:
			return nil, fmt.Errorf("want patterns must be quoted, got %q", s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty want comment")
	}
	return out, nil
}
