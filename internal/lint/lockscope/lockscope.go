// Package lockscope flags blocking operations performed while a mutex
// is held: network I/O, dials, unbounded waits (WaitGroup.Wait,
// singleflight-style Flight.Wait), and sends on channels known to be
// unbuffered. Holding a shard mutex or flightMu across any of these
// turns one slow peer into a stalled shard — the exact failure mode the
// respcache and conntrack fast paths were built to avoid.
//
// Allowed patterns the analyzer recognizes:
//
//   - sync.Cond.Wait, which releases the lock while parked;
//   - sends inside a select that has a default clause (non-blocking);
//   - unlocking before the blocking call, including the
//     lock → copy → unlock → dial shape conntrack.Acquire uses.
//
// Tracking is lexical with branch forking: a branch that unlocks and
// returns does not unlock the fall-through path.
package lockscope

import (
	"go/ast"
	"go/types"

	"webcluster/internal/lint/analysis"
	"webcluster/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockscope",
	Doc: "check that no blocking call (network I/O, dial, wait, " +
		"unbuffered channel send) happens while a mutex is held",
	Run: run,
}

var dialNames = map[string]bool{
	"Dial": true, "DialTimeout": true, "DialContext": true, "DialTCP": true,
}

// connSafe are net.Conn methods that do not block on the peer.
var connSafe = map[string]bool{
	"Close": true, "CloseRead": true, "CloseWrite": true,
	"LocalAddr": true, "RemoteAddr": true,
	"SetDeadline": true, "SetReadDeadline": true, "SetWriteDeadline": true,
	"SetNoDelay": true, "SetKeepAlive": true, "SetKeepAlivePeriod": true,
}

func run(pass *analysis.Pass) error {
	conn := lintutil.NetConnIface(pass.Pkg)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &walker{pass: pass, conn: conn,
				held:       make(map[string]bool),
				unbuffered: make(map[types.Object]bool)}
			w.walkBlock(fd.Body)
			// Function literals get their own walk with a fresh lock
			// set: a closure does not inherit the creator's critical
			// section at run time (it may run later), and goroutine
			// bodies certainly do not.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					nw := &walker{pass: pass, conn: conn,
						held:       make(map[string]bool),
						unbuffered: w.unbuffered}
					nw.walkBlock(fl.Body)
				}
				return true
			})
		}
	}
	return nil
}

type walker struct {
	pass *analysis.Pass
	conn *types.Interface
	// held maps the lock's receiver expression text ("s.mu",
	// "c.flightMu") to true while locked on the current path.
	held map[string]bool
	// unbuffered records channels created with make(chan T) in this
	// function.
	unbuffered map[types.Object]bool
}

func (w *walker) fork() *walker {
	nw := &walker{pass: w.pass, conn: w.conn,
		held: make(map[string]bool, len(w.held)), unbuffered: w.unbuffered}
	for k, v := range w.held {
		nw.held[k] = v
	}
	return nw
}

// join keeps only locks held on every surviving branch, so a branch
// that unlocks before returning does not leak an unlocked state into
// the fall-through path (and vice versa).
func (w *walker) join(branches []*walker) {
	if len(branches) == 0 {
		return
	}
	for k := range w.held {
		for _, b := range branches {
			if !b.held[k] {
				delete(w.held, k)
				break
			}
		}
	}
	for k := range branches[0].held {
		all := true
		for _, b := range branches {
			if !b.held[k] {
				all = false
				break
			}
		}
		if all {
			w.held[k] = true
		}
	}
}

func (w *walker) walkBlock(b *ast.BlockStmt) bool {
	for _, s := range b.List {
		if w.walkStmt(s) {
			return true
		}
	}
	return false
}

func (w *walker) walkStmt(s ast.Stmt) (terminated bool) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		w.handleExpr(st.X)
	case *ast.AssignStmt:
		for _, rhs := range st.Rhs {
			w.handleExpr(rhs)
		}
		w.trackMake(st)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.handleExpr(v)
					}
				}
			}
		}
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held for the rest of the
		// function — exactly the state we already track; any other
		// deferred call runs after the frame, outside this analysis.
		return false
	case *ast.SendStmt:
		w.checkSend(st, false)
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			w.handleExpr(r)
		}
		return true
	case *ast.IfStmt:
		if st.Init != nil {
			w.walkStmt(st.Init)
		}
		w.handleExpr(st.Cond)
		thenW := w.fork()
		thenTerm := thenW.walkBlock(st.Body)
		elseW := w.fork()
		elseTerm := false
		if st.Else != nil {
			elseTerm = elseW.walkStmt(st.Else)
		}
		var survivors []*walker
		if !thenTerm {
			survivors = append(survivors, thenW)
		}
		if !elseTerm {
			survivors = append(survivors, elseW)
		}
		w.join(survivors)
		return thenTerm && elseTerm
	case *ast.BlockStmt:
		return w.walkBlock(st)
	case *ast.ForStmt:
		if st.Init != nil {
			w.walkStmt(st.Init)
		}
		bw := w.fork()
		bw.walkBlock(st.Body)
		w.join([]*walker{bw})
	case *ast.RangeStmt:
		bw := w.fork()
		bw.walkBlock(st.Body)
		w.join([]*walker{bw})
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		w.walkClauses(clauseList(s), false)
	case *ast.SelectStmt:
		w.walkSelect(st)
	case *ast.LabeledStmt:
		return w.walkStmt(st.Stmt)
	case *ast.BranchStmt:
		return true
	case *ast.GoStmt:
		// The goroutine body runs outside this critical section; its
		// own locks are checked by the FuncLit walk in run.
		return false
	}
	return false
}

func clauseList(s ast.Stmt) []ast.Stmt {
	switch st := s.(type) {
	case *ast.SwitchStmt:
		return st.Body.List
	case *ast.TypeSwitchStmt:
		return st.Body.List
	}
	return nil
}

func (w *walker) walkClauses(clauses []ast.Stmt, nonBlocking bool) {
	var survivors []*walker
	for _, cl := range clauses {
		var body []ast.Stmt
		switch cc := cl.(type) {
		case *ast.CaseClause:
			body = cc.Body
		case *ast.CommClause:
			body = cc.Body
		}
		fw := w.fork()
		term := false
		for _, bs := range body {
			if fw.walkStmt(bs) {
				term = true
				break
			}
		}
		if !term {
			survivors = append(survivors, fw)
		}
	}
	w.join(survivors)
}

// walkSelect: a select with a default clause is non-blocking, so its
// communications are exempt; without one, a send on an unbuffered
// channel (or any channel we cannot see the make of) can park the
// goroutine while the lock is held.
func (w *walker) walkSelect(st *ast.SelectStmt) {
	hasDefault := false
	for _, cl := range st.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		for _, cl := range st.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				if send, ok := cc.Comm.(*ast.SendStmt); ok {
					w.checkSend(send, false)
				}
			}
		}
	}
	w.walkClauses(st.Body.List, hasDefault)
}

// trackMake records channels created unbuffered in this function.
func (w *walker) trackMake(st *ast.AssignStmt) {
	if len(st.Lhs) != len(st.Rhs) {
		return
	}
	for i, rhs := range st.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || lintutil.CalleeName(call) != "make" {
			continue
		}
		t := lintutil.TypeOf(w.pass.TypesInfo, call)
		if t == nil {
			continue
		}
		if _, isChan := t.Underlying().(*types.Chan); !isChan {
			continue
		}
		id, ok := st.Lhs[i].(*ast.Ident)
		if !ok {
			continue
		}
		obj := lintutil.ObjectOf(w.pass.TypesInfo, id)
		if obj == nil {
			continue
		}
		w.unbuffered[obj] = len(call.Args) < 2
	}
}

func (w *walker) heldAny() (string, bool) {
	for k, v := range w.held {
		if v {
			return k, true
		}
	}
	return "", false
}

func (w *walker) checkSend(st *ast.SendStmt, exempt bool) {
	lock, held := w.heldAny()
	if !held || exempt {
		return
	}
	// Only channels we saw made unbuffered in this function are flagged;
	// everything else would be guesswork.
	id, ok := ast.Unparen(st.Chan).(*ast.Ident)
	if !ok {
		return
	}
	obj := lintutil.ObjectOf(w.pass.TypesInfo, id)
	if obj == nil {
		return
	}
	if unbuf, known := w.unbuffered[obj]; known && unbuf {
		w.pass.Reportf(st.Pos(), "send on unbuffered channel %q while %s is held; the receiver may need that lock to make progress", id.Name, lock)
	}
}

// handleExpr classifies calls inside e against the current lock set.
func (w *walker) handleExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // separate goroutine/closure context
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		w.handleCall(call)
		return true
	})
}

func (w *walker) handleCall(call *ast.CallExpr) {
	name := lintutil.CalleeName(call)
	recv := lintutil.Receiver(call)
	// Package-qualified calls (fmt.Errorf, os.Stat, ...) have a package
	// name, not a value, in receiver position.
	if id, ok := recv.(*ast.Ident); ok {
		if _, isPkg := lintutil.ObjectOf(w.pass.TypesInfo, id).(*types.PkgName); isPkg {
			if dialNames[name] && isNetPkgCall(w.pass, call) {
				if lock, held := w.heldAny(); held {
					w.pass.Reportf(call.Pos(), "dial while %s is held; release the lock before network I/O (the conntrack Acquire pattern)", lock)
				}
			}
			return
		}
	}
	recvType := lintutil.TypeOf(w.pass.TypesInfo, recv)

	// Lock bookkeeping.
	if recv != nil && lintutil.IsMutex(recvType) {
		key := types.ExprString(recv)
		switch name {
		case "Lock", "RLock":
			w.held[key] = true
		case "Unlock", "RUnlock":
			delete(w.held, key)
		}
		return
	}

	lock, held := w.heldAny()
	if !held {
		return
	}

	// Blocking shapes.
	switch {
	case dialNames[name] && isNetPkgCall(w.pass, call):
		w.pass.Reportf(call.Pos(), "dial while %s is held; release the lock before network I/O (the conntrack Acquire pattern)", lock)
	case name == "Wait":
		if recv != nil && lintutil.IsSyncCond(recvType) {
			return // Cond.Wait releases the lock while parked
		}
		w.pass.Reportf(call.Pos(), "blocking Wait while %s is held", lock)
	case recv != nil && lintutil.IsNetConn(recvType, w.conn) && !connSafe[name]:
		w.pass.Reportf(call.Pos(), "network I/O (%s) while %s is held; a wedged peer stalls every caller queued on the lock", name, lock)
	}
}

func isNetPkgCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := lintutil.ObjectOf(pass.TypesInfo, id).(*types.PkgName)
	return ok && pn.Imported().Path() == "net"
}
