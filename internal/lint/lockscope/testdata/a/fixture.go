// Fixture for the lockscope analyzer: blocking calls under a held
// mutex (network I/O, dials, waits, unbuffered sends — flagged) and the
// sanctioned shapes (Cond.Wait, select with default, buffered sends,
// unlock-before-blocking, branch-local unlock).
package fixture

import (
	"net"
	"sync"
	"time"
)

type shard struct {
	mu   sync.Mutex
	conn net.Conn
	cond *sync.Cond
	addr string
}

func (s *shard) target() string { return s.addr }

// --- flagged ---

func (s *shard) badRead(buf []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, _ = s.conn.Read(buf) // want `network I/O \(Read\) while s.mu is held`
}

func (s *shard) badDial() {
	s.mu.Lock()
	_, _ = net.DialTimeout("tcp", s.addr, time.Second) // want `dial while s.mu is held`
	s.mu.Unlock()
}

func (s *shard) badWait(wg *sync.WaitGroup) {
	s.mu.Lock()
	defer s.mu.Unlock()
	wg.Wait() // want `blocking Wait while s.mu is held`
}

func (s *shard) badUnbufferedSend() {
	ch := make(chan int)
	s.mu.Lock()
	defer s.mu.Unlock()
	ch <- 1 // want `send on unbuffered channel "ch" while s.mu is held`
}

// --- allowed ---

// goodCondWait: sync.Cond.Wait releases the lock while parked.
func (s *shard) goodCondWait() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.conn == nil {
		s.cond.Wait()
	}
}

// goodUnlockFirst is the conntrack Acquire shape: copy what you need
// under the lock, release it, then do the slow thing.
func (s *shard) goodUnlockFirst() {
	s.mu.Lock()
	addr := s.target()
	s.mu.Unlock()
	_, _ = net.DialTimeout("tcp", addr, time.Second)
}

func (s *shard) goodBufferedSend() {
	ch := make(chan int, 1)
	s.mu.Lock()
	defer s.mu.Unlock()
	ch <- 1
}

// goodSelectDefault: a select with a default clause cannot park.
func (s *shard) goodSelectDefault(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case ch <- 1:
	default:
	}
}

// goodBranchUnlock: an early-unlock-and-return branch must not bleed an
// unlocked state into the fall-through path — and the fall-through
// unlock before the dial is honored.
func (s *shard) goodBranchUnlock() {
	s.mu.Lock()
	if s.conn == nil {
		s.mu.Unlock()
		return
	}
	addr := s.target()
	s.mu.Unlock()
	_, _ = net.DialTimeout("tcp", addr, time.Second)
}

// goodGoroutine: a goroutine body is not part of the creator's critical
// section.
func (s *shard) goodGoroutine() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		_, _ = net.DialTimeout("tcp", "localhost:0", time.Second)
	}()
}

// stillHeldAfterBranch: the then-branch returns while the else path
// keeps the lock; the dial after the join is flagged.
func (s *shard) stillHeldAfterBranch() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conn == nil {
		return
	}
	_, _ = net.DialTimeout("tcp", s.addr, time.Second) // want `dial while s.mu is held`
}
