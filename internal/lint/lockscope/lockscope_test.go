package lockscope_test

import (
	"testing"

	"webcluster/internal/lint/linttest"
	"webcluster/internal/lint/lockscope"
)

func TestLockScope(t *testing.T) {
	linttest.Run(t, "testdata/a", lockscope.Analyzer)
}
