// Package load parses and type-checks packages for distlint without any
// dependency outside the standard library. Standard-library imports are
// type-checked from GOROOT source via go/importer's source importer;
// module-local imports (webcluster/...) are resolved against the module
// root and loaded recursively. Everything is cached per Loader, so a
// whole-tree lint run pays the standard-library cost once.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	// Path is the import path the package was loaded under.
	Path string
	// Dir is the directory the source files came from.
	Dir  string
	Fset *token.FileSet
	// Files holds the parsed syntax trees, sorted by file name.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads packages with a shared FileSet and package cache.
// Construct with NewLoader.
type Loader struct {
	fset       *token.FileSet
	std        types.ImporterFrom
	modulePath string
	moduleRoot string
	pkgs       map[string]*Package
	stdCache   map[string]*types.Package
	// IncludeTests adds *_test.go files that belong to the package under
	// its own name (external _test packages are never loaded).
	IncludeTests bool
}

// NewLoader returns a loader for the module rooted at moduleRoot with
// the given module path (the first line of go.mod).
func NewLoader(moduleRoot, modulePath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		modulePath: modulePath,
		moduleRoot: moduleRoot,
		pkgs:       make(map[string]*Package),
		stdCache:   make(map[string]*types.Package),
	}
}

// NewLoaderAt walks up from dir to the enclosing go.mod and returns a
// loader for that module. Tests use it so fixtures can import module
// packages regardless of the working directory go test chose.
func NewLoaderAt(dir string) (*Loader, error) {
	root, path, err := FindModule(dir)
	if err != nil {
		return nil, err
	}
	return NewLoader(root, path), nil
}

// FindModule walks up from dir to the nearest go.mod, returning the
// module root directory and module path.
func FindModule(dir string) (root, modulePath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("load: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("load: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Fset returns the loader's shared FileSet.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Cached returns the already-loaded package for path, nil when the
// loader has not seen it. The analysis module uses this as its lazy
// dependency source: any module package pulled in transitively by the
// type-checker is available to the call graph without a second load.
func (l *Loader) Cached(path string) *Package { return l.pkgs[path] }

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: module-local paths load from
// the module tree, everything else from GOROOT source.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p.Types, nil
	}
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modulePath), "/")
		p, err := l.LoadDir(filepath.Join(l.moduleRoot, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	if p, ok := l.stdCache[path]; ok {
		return p, nil
	}
	p, err := l.std.ImportFrom(path, dir, mode)
	if err != nil {
		return nil, fmt.Errorf("load: importing %q: %w", path, err)
	}
	l.stdCache[path] = p
	return p, nil
}

// LoadDir parses and type-checks the package in dir under importPath.
// Results are cached by import path.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("load: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !l.IncludeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		// Respect build constraints (//go:build lines and _GOOS/_GOARCH
		// name suffixes) for the host platform, so platform-split files
		// like the distributor's listen_linux.go/listen_other.go pair
		// don't load as a redeclaration.
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("load: no Go files in %s", dir)
	}
	var files []*ast.File
	pkgName := ""
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
		// External test packages (package foo_test) type-check against
		// the package under test, which a single-pass loader cannot do;
		// they carry no production invariants, so skip them.
		if strings.HasSuffix(f.Name.Name, "_test") && pkgName != "" && f.Name.Name != pkgName {
			continue
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		}
		if f.Name.Name != pkgName {
			continue
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %w", importPath, err)
	}
	p := &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[importPath] = p
	return p, nil
}
