package distlint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"webcluster/internal/lint/distlint"
	"webcluster/internal/lint/load"
)

func loadAuditFixture(t *testing.T) (*load.Loader, *load.Package) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, modPath, err := load.FindModule(wd)
	if err != nil {
		t.Fatal(err)
	}
	l, err := load.NewLoaderAt(wd)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(wd, "testdata", "audit")
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(dir, modPath+"/"+filepath.ToSlash(rel))
	if err != nil {
		t.Fatal(err)
	}
	return l, pkg
}

// TestSuppressionAudit pins the `make lint` contract for directives:
// every //distlint:ignore must name a known analyzer, carry a reason,
// and suppress at least one diagnostic — anything else is a finding.
func TestSuppressionAudit(t *testing.T) {
	l, pkg := loadAuditFixture(t)
	r := distlint.NewRunner(l, distlint.Suite())
	r.Unscoped = true
	r.Audit = true
	findings, err := r.Run(pkg)
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, f := range findings {
		msgs = append(msgs, f.String())
	}
	joined := strings.Join(msgs, "\n")
	for _, want := range []string{
		"malformed suppression: want //distlint:ignore <analyzer> <reason>",
		`suppression names unknown analyzer "nosuchcheck"`,
		"stale suppression: pooledescape reports no diagnostic here",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("audit findings missing %q; got:\n%s", want, joined)
		}
	}
	// The used directive must not surface — neither as the diagnostic it
	// suppresses nor as a stale-suppression report.
	if strings.Contains(joined, "not released") {
		t.Errorf("suppressed pooledescape diagnostic leaked through:\n%s", joined)
	}
	if len(findings) != 3 {
		t.Errorf("got %d findings, want exactly 3:\n%s", len(findings), joined)
	}
}

// TestAuditOffHonorsSuppressions checks the fixture-mode contract:
// without Audit, directives still suppress but are never themselves
// reported, so a single-analyzer run is not noisy about other checks.
func TestAuditOffHonorsSuppressions(t *testing.T) {
	l, pkg := loadAuditFixture(t)
	r := distlint.NewRunner(l, distlint.Suite())
	r.Unscoped = true
	findings, err := r.Run(pkg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.Analyzer != "distlint" {
			t.Errorf("unexpected analyzer finding without audit: %s", f)
		}
		if strings.Contains(f.Message, "stale suppression") || strings.Contains(f.Message, "unknown analyzer") {
			t.Errorf("audit-only finding reported with Audit off: %s", f)
		}
	}
}
