// Fixture for the Runner's suppression audit: one directive that
// suppresses a real diagnostic (passes), one that suppresses nothing
// (stale), one naming an analyzer that does not exist (unknown), and
// one with no reason (malformed). The audit must flag the last three
// and stay silent about the first.
package fixture

import "sync"

var pool = sync.Pool{New: func() any { return new(int) }}

func suppressedLeak() {
	v := pool.Get().(*int)
	_ = v
	//distlint:ignore pooledescape fixture: retained value proves a used directive passes the audit
}

func clean() int {
	//distlint:ignore pooledescape fixture: nothing is flagged here, so the audit must report this directive as stale
	return 1
}

//distlint:ignore nosuchcheck fixture: a directive naming an unknown analyzer must be a finding
var answer = 42

//distlint:ignore pooledescape
func malformed() {}
