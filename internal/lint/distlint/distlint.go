// Package distlint assembles the repo's analyzer suite: the nine checks
// that machine-enforce the concurrency and data-path invariants the
// fast-path PRs introduced (see DESIGN.md §10 and §15), the per-package
// scoping rules, and the one sanctioned suppression form
//
//	//distlint:ignore <analyzer> <reason>
//
// placed on the flagged line or the line directly above it. A
// suppression without a reason is itself reported, so every silenced
// finding carries an explanation in the tree.
//
// Since distlint v2 the suite runs through a Runner holding one
// analysis.Module for the whole invocation: packages are analyzed in
// dependency order so analyzer facts flow from callee packages to their
// callers, and call-graph summaries give every analyzer interprocedural
// reach. In audit mode (the whole-module `make lint` run) the Runner
// also verifies every suppression directive: it must name a known
// analyzer, carry a reason, and actually suppress a diagnostic — a
// stale directive is itself a finding, so suppressions cannot outlive
// the code they excuse.
package distlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"webcluster/internal/lint/analysis"
	"webcluster/internal/lint/cowdiscipline"
	"webcluster/internal/lint/deadlinecheck"
	"webcluster/internal/lint/faulthook"
	"webcluster/internal/lint/journalsafe"
	"webcluster/internal/lint/leakcheck"
	"webcluster/internal/lint/load"
	"webcluster/internal/lint/lockscope"
	"webcluster/internal/lint/pooledescape"
	"webcluster/internal/lint/queuewait"
	"webcluster/internal/lint/shardaffinity"
)

// Finding is one reported (unsuppressed) diagnostic.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Suite returns the full analyzer suite in reporting order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		pooledescape.Analyzer,
		cowdiscipline.Analyzer,
		deadlinecheck.Analyzer,
		faulthook.Analyzer,
		journalsafe.Analyzer,
		leakcheck.Analyzer,
		lockscope.Analyzer,
		queuewait.Analyzer,
		shardaffinity.Analyzer,
	}
}

// scopes maps analyzer name → the internal packages it applies to. An
// empty list means every package. deadlinecheck and faulthook are
// scoped to the layers that own outbound connections: the paper's data
// plane (distributor/conntrack/backend/nfs/l4router) plus, for
// deadlines, the management plane and monitor whose wedged calls the
// chaos suite exercises. shardaffinity is scoped to the sharded data
// plane; httpx itself is exempt so its process-wide defaultPools (the
// pool set for callers without a shard) stays legal. queuewait is
// scoped to the admission subsystem, whose parked waiters must always
// have a timed way out.
var scopes = map[string][]string{
	"deadlinecheck": {
		"internal/distributor",
		"internal/mgmt",
		"internal/monitor",
		"internal/conntrack",
		"internal/l4router",
		"internal/nfs",
		"internal/core",
	},
	"shardaffinity": {
		"internal/distributor",
		"internal/conntrack",
		"internal/l4router",
		"internal/core",
	},
	"faulthook": {
		"internal/distributor",
		"internal/conntrack",
		"internal/backend",
		"internal/nfs",
		"internal/l4router",
	},
	"queuewait": {
		"internal/admission",
	},
}

// InScope reports whether the named analyzer applies to pkgPath.
// Analyzer fixtures and the lint framework itself are never analyzed.
func InScope(name, pkgPath string) bool {
	if strings.Contains(pkgPath, "internal/lint") {
		return false
	}
	scope, ok := scopes[name]
	if !ok {
		return true
	}
	for _, s := range scope {
		if strings.HasSuffix(pkgPath, s) {
			return true
		}
	}
	return false
}

// ignoreDirective is one parsed //distlint:ignore comment.
type ignoreDirective struct {
	file     string
	line     int
	analyzer string
	reason   string
	pos      token.Pos
	// used records whether the directive suppressed at least one
	// diagnostic during the run; audit mode reports unused directives.
	used bool
}

// collectIgnores parses every distlint:ignore directive in the package
// into dst (keyed by filename). Malformed directives (no analyzer, or
// no reason) are returned as findings so they cannot silently disable a
// check.
func collectIgnores(pkg *load.Package, dst map[string][]*ignoreDirective) []Finding {
	var bad []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "distlint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				pos := pkg.Fset.Position(c.Pos())
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Analyzer: "distlint",
						Pos:      pos,
						Message:  "malformed suppression: want //distlint:ignore <analyzer> <reason>",
					})
					continue
				}
				dst[pos.Filename] = append(dst[pos.Filename], &ignoreDirective{
					file:     pos.Filename,
					line:     pos.Line,
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
					pos:      c.Pos(),
				})
			}
		}
	}
	return bad
}

// suppression returns the directive covering diag (from analyzer name):
// one naming the analyzer (or "all") on its line or the line above.
func suppression(name string, pos token.Position, ignores map[string][]*ignoreDirective) *ignoreDirective {
	for _, ig := range ignores[pos.Filename] {
		if ig.analyzer != name && ig.analyzer != "all" {
			continue
		}
		if ig.line == pos.Line || ig.line == pos.Line-1 {
			return ig
		}
	}
	return nil
}

// Runner executes analyzers over a set of packages with one shared
// analysis.Module: a single call graph, fact store, and summary cache
// for the whole invocation.
type Runner struct {
	Module    *analysis.Module
	Analyzers []*analysis.Analyzer
	// Unscoped ignores the per-analyzer package scope map; the fixture
	// runner sets it because fixtures live under testdata import paths
	// no scope entry matches.
	Unscoped bool
	// Audit verifies every suppression directive in the analyzed
	// packages: it must name a known analyzer and suppress at least one
	// diagnostic, or it becomes a finding. The whole-module lint run
	// sets it; fixture runs do not (a fixture exercises one analyzer,
	// which would make every other analyzer's suppressions look stale).
	Audit bool
}

// NewRunner builds a Runner over a fresh Module. When l is non-nil its
// package cache backs the Module's lazy dependency resolution, so
// summaries can chase helpers into packages that were only pulled in as
// imports.
func NewRunner(l *load.Loader, analyzers []*analysis.Analyzer) *Runner {
	m := analysis.NewModule()
	if l != nil {
		m.Source = l.Cached
	}
	return &Runner{Module: m, Analyzers: analyzers}
}

// Run analyzes pkgs in dependency order (so facts flow from callee
// packages to their callers) and returns the unsuppressed findings plus
// any malformed/stale-suppression findings, sorted by position.
func (r *Runner) Run(pkgs ...*load.Package) ([]Finding, error) {
	requested := make(map[string]bool, len(pkgs))
	ignores := make(map[string][]*ignoreDirective)
	var findings []Finding
	for _, p := range pkgs {
		r.Module.Add(p)
		requested[p.Path] = true
		findings = append(findings, collectIgnores(p, ignores)...)
	}
	for _, p := range r.Module.DepOrder() {
		if !requested[p.Path] {
			continue // lazily pulled-in dependency, not asked for
		}
		for _, a := range r.Analyzers {
			if !r.Unscoped && !InScope(a.Name, p.Path) {
				continue
			}
			diags, err := r.Module.Run(a, p)
			if err != nil {
				return nil, err
			}
			for _, d := range diags {
				pos := p.Fset.Position(d.Pos)
				if ig := suppression(a.Name, pos, ignores); ig != nil {
					ig.used = true
					continue
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
		}
	}
	if r.Audit {
		findings = append(findings, r.auditIgnores(pkgs, ignores)...)
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].Pos.Filename != findings[j].Pos.Filename {
			return findings[i].Pos.Filename < findings[j].Pos.Filename
		}
		if findings[i].Pos.Line != findings[j].Pos.Line {
			return findings[i].Pos.Line < findings[j].Pos.Line
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, nil
}

// auditIgnores flags directives that name an unknown analyzer or that
// suppressed nothing during the run.
func (r *Runner) auditIgnores(pkgs []*load.Package, ignores map[string][]*ignoreDirective) []Finding {
	known := make(map[string]bool, len(r.Analyzers)+1)
	known["all"] = true
	for _, a := range r.Analyzers {
		known[a.Name] = true
	}
	var out []Finding
	var fset *token.FileSet
	if len(pkgs) > 0 {
		fset = pkgs[0].Fset
	}
	for _, igs := range ignores {
		for _, ig := range igs {
			switch {
			case !known[ig.analyzer]:
				out = append(out, Finding{
					Analyzer: "distlint",
					Pos:      fset.Position(ig.pos),
					Message:  fmt.Sprintf("suppression names unknown analyzer %q", ig.analyzer),
				})
			case !ig.used:
				out = append(out, Finding{
					Analyzer: "distlint",
					Pos:      fset.Position(ig.pos),
					Message: fmt.Sprintf("stale suppression: %s reports no diagnostic here (reason was: %s); delete the directive",
						ig.analyzer, ig.reason),
				})
			}
		}
	}
	return out
}

// Run executes the given analyzers (respecting scope) over one package
// in isolation and returns the unsuppressed findings, sorted by
// position. Cross-package context is limited to what the package's own
// loader cache holds; the whole-module runs use a Runner.
func Run(pkg *load.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	return NewRunner(nil, analyzers).Run(pkg)
}

// RunUnscoped executes a single analyzer over pkg ignoring the package
// scope map, applying only suppression directives. The fixture runner
// uses it: fixtures live under testdata import paths that would never
// match a scope entry, but still need //distlint:ignore honored so the
// allowed-pattern fixtures can exercise the suppression form.
func RunUnscoped(pkg *load.Package, a *analysis.Analyzer) ([]Finding, error) {
	r := NewRunner(nil, []*analysis.Analyzer{a})
	r.Unscoped = true
	return r.Run(pkg)
}

// FuncFor returns the enclosing named function of pos, for diagnostics.
func FuncFor(f *ast.File, pos token.Pos) string {
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			return fd.Name.Name
		}
	}
	return ""
}
