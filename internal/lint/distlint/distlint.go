// Package distlint assembles the repo's analyzer suite: the seven checks
// that machine-enforce the concurrency and data-path invariants the
// fast-path PRs introduced (see DESIGN.md §10), the per-package scoping
// rules, and the one sanctioned suppression form
//
//	//distlint:ignore <analyzer> <reason>
//
// placed on the flagged line or the line directly above it. A
// suppression without a reason is itself reported, so every silenced
// finding carries an explanation in the tree.
package distlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"webcluster/internal/lint/analysis"
	"webcluster/internal/lint/cowdiscipline"
	"webcluster/internal/lint/deadlinecheck"
	"webcluster/internal/lint/faulthook"
	"webcluster/internal/lint/load"
	"webcluster/internal/lint/lockscope"
	"webcluster/internal/lint/pooledescape"
	"webcluster/internal/lint/queuewait"
	"webcluster/internal/lint/shardaffinity"
)

// Finding is one reported (unsuppressed) diagnostic.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Suite returns the full analyzer suite in reporting order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		pooledescape.Analyzer,
		cowdiscipline.Analyzer,
		deadlinecheck.Analyzer,
		faulthook.Analyzer,
		lockscope.Analyzer,
		queuewait.Analyzer,
		shardaffinity.Analyzer,
	}
}

// scopes maps analyzer name → the internal packages it applies to. An
// empty list means every package. deadlinecheck and faulthook are
// scoped to the layers that own outbound connections: the paper's data
// plane (distributor/conntrack/backend/nfs/l4router) plus, for
// deadlines, the management plane and monitor whose wedged calls the
// chaos suite exercises. shardaffinity is scoped to the sharded data
// plane; httpx itself is exempt so its process-wide defaultPools (the
// pool set for callers without a shard) stays legal. queuewait is
// scoped to the admission subsystem, whose parked waiters must always
// have a timed way out.
var scopes = map[string][]string{
	"deadlinecheck": {
		"internal/distributor",
		"internal/mgmt",
		"internal/monitor",
		"internal/conntrack",
		"internal/l4router",
		"internal/nfs",
		"internal/core",
	},
	"shardaffinity": {
		"internal/distributor",
		"internal/conntrack",
		"internal/l4router",
		"internal/core",
	},
	"faulthook": {
		"internal/distributor",
		"internal/conntrack",
		"internal/backend",
		"internal/nfs",
		"internal/l4router",
	},
	"queuewait": {
		"internal/admission",
	},
}

// InScope reports whether the named analyzer applies to pkgPath.
// Analyzer fixtures and the lint framework itself are never analyzed.
func InScope(name, pkgPath string) bool {
	if strings.Contains(pkgPath, "internal/lint") {
		return false
	}
	scope, ok := scopes[name]
	if !ok {
		return true
	}
	for _, s := range scope {
		if strings.HasSuffix(pkgPath, s) {
			return true
		}
	}
	return false
}

// ignoreDirective is one parsed //distlint:ignore comment.
type ignoreDirective struct {
	file     string
	line     int
	analyzer string
	reason   string
	pos      token.Pos
}

// collectIgnores parses every distlint:ignore directive in the package.
// Malformed directives (no analyzer, or no reason) are returned
// separately as findings so they cannot silently disable a check.
func collectIgnores(pkg *load.Package) (map[string][]ignoreDirective, []Finding) {
	ignores := make(map[string][]ignoreDirective)
	var bad []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "distlint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				pos := pkg.Fset.Position(c.Pos())
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Analyzer: "distlint",
						Pos:      pos,
						Message:  "malformed suppression: want //distlint:ignore <analyzer> <reason>",
					})
					continue
				}
				ignores[pos.Filename] = append(ignores[pos.Filename], ignoreDirective{
					file:     pos.Filename,
					line:     pos.Line,
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
					pos:      c.Pos(),
				})
			}
		}
	}
	return ignores, bad
}

// suppressed reports whether diag (from analyzer name) is covered by an
// ignore directive on its line or the line above.
func suppressed(name string, pos token.Position, ignores map[string][]ignoreDirective) bool {
	for _, ig := range ignores[pos.Filename] {
		if ig.analyzer != name && ig.analyzer != "all" {
			continue
		}
		if ig.line == pos.Line || ig.line == pos.Line-1 {
			return true
		}
	}
	return false
}

// Run executes the given analyzers (respecting scope) over pkg and
// returns the unsuppressed findings, sorted by position.
func Run(pkg *load.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	ignores, findings := collectIgnores(pkg)
	for _, a := range analyzers {
		if !InScope(a.Name, pkg.Path) {
			continue
		}
		diags, err := analysis.Run(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
		if err != nil {
			return nil, err
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			if suppressed(a.Name, pos, ignores) {
				continue
			}
			findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].Pos.Filename != findings[j].Pos.Filename {
			return findings[i].Pos.Filename < findings[j].Pos.Filename
		}
		if findings[i].Pos.Line != findings[j].Pos.Line {
			return findings[i].Pos.Line < findings[j].Pos.Line
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, nil
}

// RunUnscoped executes a single analyzer over pkg ignoring the package
// scope map, applying only suppression directives. The fixture runner
// uses it: fixtures live under synthetic import paths that would never
// match a scope entry, but still need //distlint:ignore honored so the
// allowed-pattern fixtures can exercise the suppression form.
func RunUnscoped(pkg *load.Package, a *analysis.Analyzer) ([]Finding, error) {
	ignores, findings := collectIgnores(pkg)
	diags, err := analysis.Run(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
	if err != nil {
		return nil, err
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if suppressed(a.Name, pos, ignores) {
			continue
		}
		findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].Pos.Filename != findings[j].Pos.Filename {
			return findings[i].Pos.Filename < findings[j].Pos.Filename
		}
		return findings[i].Pos.Line < findings[j].Pos.Line
	})
	return findings, nil
}

// FuncFor returns the enclosing named function of pos, for diagnostics.
func FuncFor(f *ast.File, pos token.Pos) string {
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			return fd.Name.Name
		}
	}
	return ""
}
