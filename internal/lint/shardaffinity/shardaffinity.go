// Package shardaffinity enforces the per-core partitioning the relay v3
// fast path depends on: a pool set marked `distlint:pershard` (httpx.Pools
// and friends) is owned by exactly one shard, so its buffers stay
// core-local instead of bouncing between CPUs. Two ways of breaking that
// ownership are flagged:
//
//   - a per-shard value stored in a package-level variable — a global is
//     by definition shared by every shard, defeating the partitioning
//     (the owning package's own process-wide default, e.g. httpx's
//     defaultPools, is exempt via the suite's scoping rules);
//   - a value acquired from one per-shard instance and released to a
//     different one — `r := a.AcquireReader(c)` … `b.ReleaseReader(r)`
//     silently migrates the buffer between shards, and under load turns
//     the per-shard pools back into one contended global.
//
// Marker recognition mirrors cowdiscipline: a `distlint:pershard` marker
// in the type's doc comment (visible when the declaring package is the
// one analyzed) or an empty method named PerShardMarker (visible through
// the type checker everywhere).
package shardaffinity

import (
	"go/ast"
	"go/types"
	"strings"

	"webcluster/internal/lint/analysis"
	"webcluster/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "shardaffinity",
	Doc: "check that per-shard pool sets (distlint:pershard) are never " +
		"stored in globals and that acquired values are released back to " +
		"the instance they came from",
	Run: run,
}

func run(pass *analysis.Pass) error {
	marked := markedTypes(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				checkGlobal(pass, d, marked)
			case *ast.FuncDecl:
				if d.Body != nil {
					checkFunc(pass, d, marked)
				}
			}
		}
	}
	return nil
}

// markedTypes collects named types whose declaration doc contains a
// `distlint:pershard` marker in the package being analyzed.
func markedTypes(pass *analysis.Pass) map[string]bool {
	marked := make(map[string]bool)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil {
					doc = gd.Doc
				}
				if doc != nil && strings.Contains(doc.Text(), "distlint:pershard") {
					marked[pass.Pkg.Path()+"."+ts.Name.Name] = true
				}
			}
		}
	}
	return marked
}

// perShard reports whether t (through pointers, slices, arrays and map
// values) reaches a type carrying the distlint:pershard marker.
func perShard(t types.Type, marked map[string]bool) bool {
	switch u := t.(type) {
	case *types.Pointer:
		return perShard(u.Elem(), marked)
	case *types.Slice:
		return perShard(u.Elem(), marked)
	case *types.Array:
		return perShard(u.Elem(), marked)
	case *types.Map:
		return perShard(u.Elem(), marked)
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return false
	}
	if marked[obj.Pkg().Path()+"."+obj.Name()] {
		return true
	}
	for i := 0; i < n.NumMethods(); i++ {
		if n.Method(i).Name() == "PerShardMarker" {
			return true
		}
	}
	return false
}

// checkGlobal flags package-level vars holding per-shard values.
func checkGlobal(pass *analysis.Pass, gd *ast.GenDecl, marked map[string]bool) {
	if gd.Tok.String() != "var" {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, name := range vs.Names {
			if name.Name == "_" {
				continue
			}
			obj := lintutil.ObjectOf(pass.TypesInfo, name)
			if obj == nil {
				continue
			}
			if perShard(obj.Type(), marked) {
				pass.Reportf(name.Pos(), "per-shard value %q stored in a package-level var; a global is shared by every shard — keep it inside the shard struct", name.Name)
			}
		}
	}
}

// poolCall matches recv.AcquireX(...) / recv.ReleaseX(...) calls on a
// per-shard receiver, returning the receiver's root object.
func poolCall(pass *analysis.Pass, call *ast.CallExpr, prefix string, marked map[string]bool) (types.Object, bool) {
	name := lintutil.CalleeName(call)
	if !strings.HasPrefix(name, prefix) && !strings.HasPrefix(name, strings.ToLower(prefix)) {
		return nil, false
	}
	recv := lintutil.Receiver(call)
	if recv == nil {
		return nil, false
	}
	t := lintutil.TypeOf(pass.TypesInfo, recv)
	if t == nil || !perShard(t, marked) {
		return nil, false
	}
	root := lintutil.RootIdent(recv)
	if root == nil {
		return nil, false
	}
	return lintutil.ObjectOf(pass.TypesInfo, root), true
}

// checkFunc flags values acquired from one per-shard instance and
// released to another within the same function body.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, marked map[string]bool) {
	// origin maps each variable bound to an Acquire result to the root
	// object of the pool it was acquired from.
	origin := make(map[types.Object]types.Object)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		pool, ok := poolCall(pass, call, "Acquire", marked)
		if !ok || pool == nil {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			if obj := lintutil.ObjectOf(pass.TypesInfo, id); obj != nil {
				origin[obj] = pool
			}
		}
		return true
	})
	if len(origin) == 0 {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pool, ok := poolCall(pass, call, "Release", marked)
		if !ok || pool == nil {
			return true
		}
		for _, arg := range call.Args {
			id, ok := ast.Unparen(arg).(*ast.Ident)
			if !ok {
				continue
			}
			obj := lintutil.ObjectOf(pass.TypesInfo, id)
			if obj == nil {
				continue
			}
			if from, tracked := origin[obj]; tracked && from != pool {
				pass.Reportf(arg.Pos(), "%q was acquired from %q but released to %q; per-shard values must go back to the pool set they came from", id.Name, from.Name(), pool.Name())
			}
		}
		return true
	})
}
