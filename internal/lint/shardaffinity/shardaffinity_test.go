package shardaffinity_test

import (
	"testing"

	"webcluster/internal/lint/linttest"
	"webcluster/internal/lint/shardaffinity"
)

func TestShardAffinity(t *testing.T) {
	linttest.Run(t, "testdata/a", shardaffinity.Analyzer)
}
