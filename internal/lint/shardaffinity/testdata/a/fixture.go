// Fixture for the shardaffinity analyzer: per-shard pool sets stored in
// package-level vars (flagged), cross-instance release (flagged), and
// the sanctioned shard-local acquire/release pattern (allowed).
package fixture

import "sync"

// pools is one shard's buffer pool set.
//
// distlint:pershard
type pools struct {
	bufs sync.Pool
}

func newPools() *pools { return &pools{} }

func (p *pools) AcquireBuf() *[]byte {
	if b, ok := p.bufs.Get().(*[]byte); ok {
		return b
	}
	b := make([]byte, 0, 64)
	return &b
}

func (p *pools) ReleaseBuf(b *[]byte) { p.bufs.Put(b) }

// unmarked is an ordinary pool-shaped type with no shard affinity.
type unmarked struct {
	bufs sync.Pool
}

func (p *unmarked) AcquireBuf() *[]byte { return nil }
func (p *unmarked) ReleaseBuf(b *[]byte) {}

// --- flagged: a global is shared by every shard ---

var globalPools = newPools() // want `per-shard value "globalPools" stored in a package-level var`

var globalSlice []*pools // want `per-shard value "globalSlice" stored in a package-level var`

// --- flagged: release to a different instance than the acquire ---

type shard struct {
	id    int
	pools *pools
}

func badCrossShardRelease(a, b *shard) {
	buf := a.pools.AcquireBuf()
	*buf = append(*buf, 'x')
	b.pools.ReleaseBuf(buf) // want `"buf" was acquired from "a" but released to "b"`
}

// --- allowed ---

// goodShardLocal releases back to the owning shard's pools.
func goodShardLocal(s *shard) {
	buf := s.pools.AcquireBuf()
	*buf = append(*buf, 'x')
	s.pools.ReleaseBuf(buf)
}

// goodDeferRelease is the usual defer form.
func goodDeferRelease(s *shard) {
	buf := s.pools.AcquireBuf()
	defer s.pools.ReleaseBuf(buf)
	*buf = append(*buf, 'y')
}

// goodUnmarked: unmarked pool types carry no affinity contract.
func goodUnmarked(a, b *unmarked) {
	buf := a.AcquireBuf()
	b.ReleaseBuf(buf)
}

var globalUnmarked = &unmarked{} // plain globals of unmarked types are fine
