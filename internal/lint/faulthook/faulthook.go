// Package faulthook keeps the chaos harness honest: every outbound dial
// site in the data plane must be reachable by the deterministic fault
// injector (internal/faults), or chaos coverage silently rots as new
// I/O paths appear. A function that dials must consult an
// *faults.Injector — Fail before the dial, or Conn to wrap the result —
// somewhere in its body.
//
// The one sanctioned exception is a function literal passed as a
// conntrack Dialer: the pool injects faults at its own boundary
// (pool.dial/pool.conn hooks around every dial it makes), so the raw
// dialer closure stays fault-free by design.
//
// Since distlint v2 the reachability is interprocedural: a body that
// calls a helper — in any module package, any number of frames deep —
// whose call-graph summary says a net.Dial is reachable with no
// injector consult anywhere along the chain is flagged at the call
// site, unless the body itself consults the injector (the Fail-before-
// dial pattern guards the whole subtree). The old engine only saw
// dials spelled `net.Dial*` in the body being analyzed.
package faulthook

import (
	"go/ast"
	"go/types"

	"webcluster/internal/lint/analysis"
	"webcluster/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "faulthook",
	Doc: "check that data-plane dial sites consult the internal/faults " +
		"injector so chaos tests can reach them",
	Run: run,
}

var dialNames = map[string]bool{
	"Dial": true, "DialTimeout": true, "DialContext": true, "DialTCP": true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			check(pass, fd.Body)
		}
	}
	return nil
}

// check analyzes one declared function: each dial site must share a
// body with an injector call, where "body" means the innermost
// enclosing function (literal or declaration). Dials hidden behind
// helper calls count as dial sites of this body when the helper's
// summary says no injector consult guards them anywhere down the chain.
func check(pass *analysis.Pass, body *ast.BlockStmt) {
	dialerLits := collectDialerLits(pass, body)
	dials := dialSites(pass, body, body, dialerLits)
	dials = append(dials, helperDialSites(pass, body, body, dialerLits)...)
	if len(dials) == 0 {
		return
	}
	for _, d := range dials {
		if callsInjector(pass, d.scope) {
			continue
		}
		if d.via != "" {
			pass.Reportf(d.call.Pos(), "call reaches an unhooked dial (%s) with no injector consult on the path; consult internal/faults here or inside the helper so chaos tests can exercise it", d.via)
			continue
		}
		pass.Reportf(d.call.Pos(), "dial site bypasses internal/faults; consult the injector (Fail before the dial or Conn on the result) so chaos tests can exercise this path")
	}
}

// helperDialSites finds calls to functions in other packages whose
// summary carries an unhooked reachable dial. Same-package helpers are
// skipped: their own bodies are checked directly by this pass, so the
// dial is already reported where it lives.
func helperDialSites(pass *analysis.Pass, n ast.Node, scope ast.Node, dialerLits map[*ast.FuncLit]bool) []dialSite {
	var out []dialSite
	ast.Inspect(n, func(x ast.Node) bool {
		switch v := x.(type) {
		case *ast.FuncLit:
			if v != n {
				if !dialerLits[v] {
					out = append(out, helperDialSites(pass, v.Body, v.Body, dialerLits)...)
				}
				return false
			}
		case *ast.CallExpr:
			fn := pass.Module.CalleeFunc(pass.TypesInfo, v)
			if fn == nil || fn.Pkg() == pass.Pkg {
				return true
			}
			if s := pass.Module.Summary(fn); s != nil && s.DialsUnhooked {
				out = append(out, dialSite{call: v, scope: scope, via: s.UnhookedVia})
			}
		}
		return true
	})
	return out
}

// collectDialerLits finds function literals used where a named Dialer
// type is expected: passed to a parameter of that type, converted to
// it, or assigned to a variable of it.
func collectDialerLits(pass *analysis.Pass, body *ast.BlockStmt) map[*ast.FuncLit]bool {
	out := make(map[*ast.FuncLit]bool)
	ast.Inspect(body, func(x ast.Node) bool {
		switch v := x.(type) {
		case *ast.CallExpr:
			// Conversion: conntrack.Dialer(func(...) ...).
			if tv, ok := pass.TypesInfo.Types[v.Fun]; ok && tv.IsType() && isDialerType(tv.Type) {
				for _, arg := range v.Args {
					if fl, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
						out[fl] = true
					}
				}
				return true
			}
			// Call: NewPool(func(...) ..., ...) where the parameter is a
			// named Dialer.
			sig, ok := lintutil.TypeOf(pass.TypesInfo, v.Fun).(*types.Signature)
			if !ok {
				return true
			}
			for i, arg := range v.Args {
				fl, ok := ast.Unparen(arg).(*ast.FuncLit)
				if !ok {
					continue
				}
				pi := i
				if sig.Variadic() && pi >= sig.Params().Len() {
					pi = sig.Params().Len() - 1
				}
				if pi < sig.Params().Len() && isDialerType(sig.Params().At(pi).Type()) {
					out[fl] = true
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range v.Rhs {
				fl, ok := ast.Unparen(rhs).(*ast.FuncLit)
				if !ok || i >= len(v.Lhs) {
					continue
				}
				if t := lintutil.TypeOf(pass.TypesInfo, v.Lhs[i]); t != nil && isDialerType(t) {
					out[fl] = true
				}
			}
		}
		return true
	})
	return out
}

type dialSite struct {
	call *ast.CallExpr
	// scope is the innermost function body containing the dial; the
	// injector consult must happen within it.
	scope ast.Node
	// via, when non-empty, names the helper chain the dial hides behind
	// (pkg.f → pkg.g); empty for direct net.Dial* sites.
	via string
}

// dialSites finds net dial calls under n, tracking the innermost
// function scope and skipping literals that serve as conntrack dialers.
func dialSites(pass *analysis.Pass, n ast.Node, scope ast.Node, dialerLits map[*ast.FuncLit]bool) []dialSite {
	var out []dialSite
	ast.Inspect(n, func(x ast.Node) bool {
		switch v := x.(type) {
		case *ast.FuncLit:
			if v != n {
				if !dialerLits[v] {
					out = append(out, dialSites(pass, v.Body, v.Body, dialerLits)...)
				}
				return false
			}
		case *ast.CallExpr:
			if isNetDial(pass, v) {
				out = append(out, dialSite{call: v, scope: scope})
			}
		}
		return true
	})
	return out
}

func isNetDial(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !dialNames[sel.Sel.Name] {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := lintutil.ObjectOf(pass.TypesInfo, id).(*types.PkgName)
	return ok && pn.Imported().Path() == "net"
}

func isDialerType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "Dialer"
}

// callsInjector reports whether scope contains a method call on an
// *faults.Injector value (Fail, Conn, Listener, ...), not counting
// nested function literals (their dials are checked separately, and an
// injector consult inside a callback does not guard this dial).
func callsInjector(pass *analysis.Pass, scope ast.Node) bool {
	found := false
	ast.Inspect(scope, func(x ast.Node) bool {
		if found {
			return false
		}
		if fl, ok := x.(*ast.FuncLit); ok && fl != scope {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv := lintutil.Receiver(call)
		if recv == nil {
			return true
		}
		t := lintutil.TypeOf(pass.TypesInfo, recv)
		if t != nil && lintutil.IsNamed(t, "webcluster/internal/faults", "Injector") {
			found = true
		}
		return true
	})
	return found
}
