// Cross-package fixture for faulthook: the dial is hidden behind
// remote.Open in another package. The pre-v2 engine matched only
// net.Dial* spellings in the analyzed body, so the unguarded call below
// was provably unreportable; v2 reaches it through the helper's
// DialsUnhooked summary, and the Fail-before-call consult in the
// guarded variant covers the whole subtree.
package fixture

import (
	"net"

	"webcluster/internal/faults"
	"webcluster/internal/lint/faulthook/testdata/remote"
)

// --- flagged ---

func fetch(addr string) (net.Conn, error) {
	return remote.Open(addr) // want `call reaches an unhooked dial`
}

// --- allowed ---

func fetchGuarded(inj *faults.Injector, addr string) (net.Conn, error) {
	if err := inj.Fail("fixture.fetch"); err != nil {
		return nil, err
	}
	return remote.Open(addr)
}
