// Package remote is the helper side of the faulthook cross-package
// fixture: Open dials with no injector consult anywhere on the path.
// Pre-v2 the analyzer recognized dial sites only when spelled net.Dial*
// in the body being analyzed, so a caller in another package reaching
// this dial through remote.Open was provably invisible. v2 propagates
// DialsUnhooked through call-graph summaries and flags the call site.
package remote

import "net"

// Open dials the backend directly; its own body is flagged here, and
// every unguarded cross-package call reaching it is flagged at the
// caller.
func Open(addr string) (net.Conn, error) {
	return net.Dial("tcp", addr) // want `dial site bypasses internal/faults`
}
