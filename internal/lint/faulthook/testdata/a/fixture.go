// Fixture for the faulthook analyzer: data-plane dial sites must
// consult the internal/faults injector (flagged when they bypass it),
// except function literals serving as conntrack-style Dialers, where
// the pool injects faults at its own boundary.
package fixture

import (
	"net"
	"time"

	"webcluster/internal/faults"
)

type server struct {
	faults *faults.Injector
}

// --- flagged ---

func (s *server) badDial(addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, time.Second) // want `dial site bypasses internal/faults`
}

func bareFunctionDial(addr string) (net.Conn, error) {
	conn, err := net.Dial("tcp", addr) // want `dial site bypasses internal/faults`
	if err != nil {
		return nil, err
	}
	return conn, nil
}

// closureConsultDoesNotCount: an injector consult inside a nested
// callback does not guard the outer dial.
func (s *server) closureConsultDoesNotCount(addr string) (net.Conn, error) {
	cleanup := func() { _ = s.faults.Fail("fixture.cleanup") }
	defer cleanup()
	return net.DialTimeout("tcp", addr, time.Second) // want `dial site bypasses internal/faults`
}

// --- allowed ---

func (s *server) goodDial(addr string) (net.Conn, error) {
	if err := s.faults.Fail("fixture.dial"); err != nil {
		return nil, err
	}
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return nil, err
	}
	return s.faults.Conn("fixture.conn", conn), nil
}

// Dialer mirrors conntrack.Dialer: raw dial closures handed to the pool
// stay fault-free because the pool wraps every dial it makes.
type Dialer func(addr string) (net.Conn, error)

type pool struct {
	dial Dialer
	in   *faults.Injector
}

func newPool(dial Dialer) *pool { return &pool{dial: dial} }

func dialerArgumentIsExempt() *pool {
	return newPool(func(addr string) (net.Conn, error) {
		return net.DialTimeout("tcp", addr, time.Second)
	})
}

func dialerConversionIsExempt() Dialer {
	d := Dialer(func(addr string) (net.Conn, error) {
		return net.DialTimeout("tcp", addr, time.Second)
	})
	return d
}

// poolDialGoesThroughInjector is the pool-boundary pattern the
// exemption exists for.
func (p *pool) get(addr string) (net.Conn, error) {
	if err := p.in.Fail("pool.dial"); err != nil {
		return nil, err
	}
	conn, err := p.dial(addr)
	if err != nil {
		return nil, err
	}
	return p.in.Conn("pool.conn", conn), nil
}
