package faulthook_test

import (
	"testing"

	"webcluster/internal/lint/faulthook"
	"webcluster/internal/lint/linttest"
)

func TestFaultHook(t *testing.T) {
	linttest.Run(t, "testdata/a", faulthook.Analyzer)
}
