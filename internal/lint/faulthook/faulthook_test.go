package faulthook_test

import (
	"testing"

	"webcluster/internal/lint/faulthook"
	"webcluster/internal/lint/linttest"
)

func TestFaultHook(t *testing.T) {
	linttest.Run(t, "testdata/a", faulthook.Analyzer)
}

// TestFaultHookCrossPackage pins the interprocedural upgrade: an
// unhooked dial hidden behind a helper in another package is flagged at
// the call site, unless the caller consults the injector first.
func TestFaultHookCrossPackage(t *testing.T) {
	linttest.RunDirs(t, faulthook.Analyzer, "testdata/remote", "testdata/d")
}
