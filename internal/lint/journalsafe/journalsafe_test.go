package journalsafe_test

import (
	"testing"

	"webcluster/internal/lint/journalsafe"
	"webcluster/internal/lint/linttest"
)

func TestJournalSafe(t *testing.T) {
	linttest.Run(t, "testdata/a", journalsafe.Analyzer)
}
