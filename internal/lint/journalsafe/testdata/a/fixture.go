// Fixture for the journalsafe analyzer: journal.Record arguments must
// stay allocation-free — no calls, no string concatenation. The
// allowed patterns mirror the product callsites: hoist the expensive
// expression into a local on the line above, keep only basic
// conversions inside the Event literal.
package fixture

import (
	"fmt"

	"webcluster/internal/journal"
)

type nodeID string

// --- flagged ---

func concatInArg(j *journal.Journal, class, verdict string) {
	j.Record(journal.Event{
		Actor:  journal.ActorDistributor,
		Kind:   journal.KindAdmissionShed,
		Detail: class + " " + verdict, // want `string concatenation allocates in a journal.Record argument`
	})
}

func errorCallInArg(j *journal.Journal, err error) {
	j.Record(journal.Event{
		Actor:  journal.ActorMonitor,
		Kind:   journal.KindNodeDown,
		Detail: err.Error(), // want `call of Error inside a journal.Record argument`
	})
}

func sprintfInArg(j *journal.Journal, n int) {
	j.Record(journal.Event{
		Actor:  journal.ActorFaults,
		Kind:   journal.KindFault,
		Detail: fmt.Sprintf("gen %d", n), // want `call of Sprintf inside a journal.Record argument`
	})
}

func incidentCallInArg(j *journal.Journal, node string) {
	j.Record(journal.Event{
		Actor: journal.ActorDistributor,
		Kind:  journal.KindFailover,
		Trace: j.Incident(node), // want `call of Incident inside a journal.Record argument`
		Node:  node,
	})
}

func sliceConversionInArg(j *journal.Journal, raw []byte) {
	j.Record(journal.Event{
		Actor:  journal.ActorAgent,
		Kind:   journal.KindAgentOp,
		Detail: string(raw), // want `string conversion from a slice allocates in a journal.Record argument`
	})
}

func appendInArg(j *journal.Journal, parts []string, s string) {
	j.Record(journal.Event{
		Actor: journal.ActorAgent,
		Kind:  journal.KindAgentOp,
		A:     int64(len(append(parts, s))), // want `call of append inside a journal.Record argument`
	})
}

// --- allowed ---

// freeBuiltins never allocate: len/cap under a basic conversion.
func freeBuiltins(j *journal.Journal, events []int) {
	j.Record(journal.Event{
		Actor: journal.ActorRecorder,
		Kind:  journal.KindSnapshot,
		A:     int64(len(events)),
		B:     int64(cap(events)),
	})
}

// hoisted is the product idiom: precompute, then record.
func hoisted(j *journal.Journal, node nodeID, err error) {
	detail := err.Error()
	tr := j.Incident(string(node))
	j.Record(journal.Event{
		Actor:  journal.ActorMonitor,
		Kind:   journal.KindNodeDown,
		Trace:  tr,
		Node:   string(node), // basic conversion: free
		Detail: detail,
	})
}

func basicConversions(j *journal.Journal, node nodeID, gen uint64) {
	j.Record(journal.Event{
		Actor:  journal.ActorFaults,
		Kind:   journal.KindFault,
		Node:   string(node),
		A:      int64(gen),
		Detail: "point",
	})
}

// otherRecord proves the check is typed: a Record method on some other
// type is not the journal's record path.
type sink struct{}

func (sink) Record(s string) string { return fmt.Sprintf("[%s]", s) }

func notTheJournal(s sink, err error) string {
	return s.Record(err.Error() + "!")
}
