// Package journalsafe enforces the zero-allocation contract of the
// decision journal's record path: journal.Record is called from relay
// failover, admission shedding, monitor transitions, and fault hooks —
// places where an allocation or a blocking call in the argument list
// would tax exactly the path the journal exists to observe. The rule:
//
//  1. No function or method call inside a Record argument — err.Error(),
//     fmt.Sprintf, x.String() all allocate (and an arbitrary call may
//     block). Hoist the call into a local before the Record line; the
//     hoisted form also keeps the expensive work out of the argument
//     list when recording is conditional.
//  2. No string concatenation inside a Record argument — `a + b` on
//     strings allocates per call.
//  3. Conversions to basic types (string(nodeID), int64(gen)) are
//     exempt — they are free — unless the operand is a byte/rune slice,
//     whose string conversion copies.
//
// The journal.Event composite literal itself is fine: Record takes it
// by value and the copy stays on the stack.
package journalsafe

import (
	"go/ast"
	"go/token"
	"go/types"

	"webcluster/internal/lint/analysis"
	"webcluster/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "journalsafe",
	Doc: "check that journal.Record arguments stay allocation-free: no " +
		"calls or string concatenation; precompute into locals",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isJournalRecord(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				checkArg(pass, arg)
			}
			return true
		})
	}
	return nil
}

// isJournalRecord reports whether call is (*journal.Journal).Record.
func isJournalRecord(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Record" {
		return false
	}
	t := lintutil.TypeOf(pass.TypesInfo, sel.X)
	return lintutil.IsNamed(t, "webcluster/internal/journal", "Journal")
}

// checkArg walks one Record argument expression and reports every
// allocating construct in it.
func checkArg(pass *analysis.Pass, arg ast.Expr) {
	ast.Inspect(arg, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			if conv, sliceOperand := basicConversion(pass, v); conv {
				if sliceOperand {
					pass.Reportf(v.Pos(), "string conversion from a slice allocates in a journal.Record argument; precompute into a local before recording")
				}
				return true // descend into the converted operand
			}
			if freeBuiltin(pass, v) {
				return true // len/cap/min/max never allocate or block
			}
			name := lintutil.CalleeName(v)
			if name == "" {
				name = "function"
			}
			pass.Reportf(v.Pos(), "call of %s inside a journal.Record argument may allocate or block on the record path; hoist it into a local before recording", name)
			return false // the one report covers the whole call
		case *ast.BinaryExpr:
			if v.Op == token.ADD && isString(lintutil.TypeOf(pass.TypesInfo, v)) {
				pass.Reportf(v.Pos(), "string concatenation allocates in a journal.Record argument; precompute into a local before recording")
				return false
			}
		}
		return true
	})
}

// basicConversion reports whether call is a type conversion to a basic
// type, and whether its operand is a byte/rune slice (the one basic
// conversion that allocates).
func basicConversion(pass *analysis.Pass, call *ast.CallExpr) (conv, sliceOperand bool) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return false, false
	}
	if _, basic := tv.Type.Underlying().(*types.Basic); !basic {
		return false, false
	}
	if len(call.Args) == 1 {
		if at := lintutil.TypeOf(pass.TypesInfo, call.Args[0]); at != nil {
			if _, slice := at.Underlying().(*types.Slice); slice {
				return true, true
			}
		}
	}
	return true, false
}

// freeBuiltin reports whether call invokes one of the builtins that
// never allocate or block (append/make/new allocate and stay flagged).
func freeBuiltin(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if _, builtin := lintutil.ObjectOf(pass.TypesInfo, id).(*types.Builtin); !builtin {
		return false
	}
	switch id.Name {
	case "len", "cap", "min", "max", "real", "imag":
		return true
	}
	return false
}

// isString reports whether t's underlying type is string.
func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
