// Package leakcheck proves that every `go` statement has a reachable
// termination path, flagging goroutines that can outlive their owner.
//
// A spawned body is accepted when any of the following holds:
//
//   - it is WaitGroup-joined: the body (or a function it calls) does a
//     sync.WaitGroup Done, so an owner can Wait for it;
//   - it is signal-terminated: every unconditional loop contains a
//     return/break (the done-channel select and accept-loop patterns),
//     it ranges over a channel (ends at close), or it blocks on a
//     receive of a signal channel (chan struct{});
//   - it is bounded: no unconditional loops and no known-blocking calls
//     (net/http Serve/ListenAndServe), so the body runs to completion;
//   - the spawning function is scoped by testutil.NoLeaks, which makes
//     the test itself fail if the goroutine outlives it.
//
// Classification is interprocedural: `go s.run()` is judged by the
// summary of run's body wherever it is declared, including other
// packages, and a call to a helper that loops forever makes the
// spawned body unbounded.
//
// Soundness limits (DESIGN.md §15): goroutines spawned through function
// values or interface methods cannot be resolved and are skipped; a
// WaitGroup Done is taken as join evidence without proving a matching
// Wait; blocking channel operations outside loops are assumed to be
// signal-shaped only for chan struct{}.
package leakcheck

import (
	"go/ast"

	"webcluster/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "leakcheck",
	Doc: "every go statement must have a reachable termination path " +
		"(done-channel select, bounded body, WaitGroup join, or " +
		"testutil.NoLeaks scope); goroutines that can outlive their " +
		"owner leak under the day-long replay scenarios",
	Run: run,
}

func run(pass *analysis.Pass) error {
	m := pass.Module
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			node := m.NodeForDecl(pass.Unit, fd)
			if node == nil {
				continue
			}
			// NoLeaks in the spawning function covers every spawn in it.
			owner := m.ClassifyBody(pass.Unit, fd.Body)
			for _, gs := range node.Spawns {
				checkSpawn(pass, gs, owner.CallsNoLeaks)
			}
		}
	}
	return nil
}

func checkSpawn(pass *analysis.Pass, gs *analysis.GoSite, noLeaksScoped bool) {
	m := pass.Module
	var bc analysis.BodyClass
	switch {
	case gs.Body != nil:
		bc = m.ClassifyBody(gs.Owner.Pkg, gs.Body)
	case gs.Callee != nil:
		s := m.Summary(gs.Callee.Func)
		if s == nil {
			return // declared elsewhere without source; nothing to prove against
		}
		bc = s.Body
	default:
		// `go` through a function value or interface method: the spawned
		// body is not statically resolvable. Documented soundness limit.
		return
	}
	if noLeaksScoped || bc.CallsNoLeaks || bc.JoinsWaitGroup {
		return
	}
	if bc.Term != analysis.TermUnbounded {
		return
	}
	pass.Reportf(gs.Stmt.Pos(),
		"goroutine has no reachable termination path: %s; "+
			"add a done-channel select, a WaitGroup join, or scope the test with testutil.NoLeaks",
		bc.Why)
}
