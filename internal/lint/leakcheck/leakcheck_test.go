package leakcheck_test

import (
	"testing"

	"webcluster/internal/lint/leakcheck"
	"webcluster/internal/lint/linttest"
)

func TestLeakCheck(t *testing.T) {
	linttest.RunDirs(t, leakcheck.Analyzer, "testdata/helper", "testdata/a")
}
