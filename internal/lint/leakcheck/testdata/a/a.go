// Fixture for the leakcheck analyzer: goroutines with no reachable
// termination path (flagged) and the sanctioned lifetimes — done-channel
// select, WaitGroup join, bounded body, range-over-channel, signal
// receive, and testutil.NoLeaks scope (all allowed).
//
// The helper-package spawns demonstrate violations the old engine
// provably missed: the spawned bodies live in testdata/helper, outside
// the analyzed package's syntax, so only the interprocedural summary
// can classify them.
package fixture

import (
	"net"
	"net/http"
	"sync"
	"testing"

	"webcluster/internal/lint/leakcheck/testdata/helper"
	"webcluster/internal/testutil"
)

// --- flagged ---

func spawnForever() {
	go func() { // want `goroutine has no reachable termination path`
		for {
		}
	}()
}

func spawnHelperForever() {
	go helper.SpinForever() // want `goroutine has no reachable termination path`
}

func spawnServe(srv *http.Server, ln net.Listener) {
	go func() { // want `goroutine has no reachable termination path`
		_ = srv.Serve(ln)
	}()
}

// --- allowed ---

func spawnDoneSelect(done chan struct{}, work chan int) {
	go func() {
		for {
			select {
			case <-done:
				return
			case <-work:
			}
		}
	}()
}

func spawnJoined(srv *http.Server, ln net.Listener) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.Serve(ln)
	}()
	_ = srv.Close()
	wg.Wait()
}

func spawnBounded(ch chan<- int) {
	go func() {
		ch <- 1
	}()
}

func spawnHelperRange(ch chan int) {
	go helper.DrainUntilClosed(ch)
}

func spawnHelperDone(done chan struct{}) {
	go helper.RunUntilDone(done)
}

func spawnScoped(t *testing.T) {
	testutil.NoLeaks(t)
	go func() {
		for {
		}
	}()
}
