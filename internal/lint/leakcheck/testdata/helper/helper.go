// Package helper holds the bodies spawned by the leakcheck
// cross-package fixture (testdata/a). The pre-v2 engine analyzed one
// package at a time with no call-graph summaries, so a `go
// helper.SpinForever()` in another package was provably invisible to
// it: the spawned body's syntax was simply not in the analyzed
// package. v2 classifies the spawn by the callee's summary wherever it
// is declared.
package helper

// SpinForever loops with no reachable exit; any goroutine running it
// outlives its owner.
func SpinForever() {
	for {
	}
}

// DrainUntilClosed terminates when the channel is closed — the
// range-over-channel termination pattern.
func DrainUntilClosed(ch <-chan int) {
	for range ch {
	}
}

// RunUntilDone terminates when done is closed — the done-channel
// select pattern.
func RunUntilDone(done <-chan struct{}) {
	for {
		select {
		case <-done:
			return
		default:
		}
	}
}
