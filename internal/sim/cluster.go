package sim

import (
	"fmt"
	"time"

	"webcluster/internal/config"
	"webcluster/internal/content"
	"webcluster/internal/loadbal"
	"webcluster/internal/urltable"
)

// FrontendKind selects the request-routing mechanism under test.
type FrontendKind int

// Front ends.
const (
	// FrontL4WLC is the baseline layer-4 TCP connection router with
	// Weighted Least Connection (configurations 1 and 2).
	FrontL4WLC FrontendKind = iota + 1
	// FrontContentAware is the paper's content-aware distributor
	// (configuration 3).
	FrontContentAware
)

// String names the front end.
func (k FrontendKind) String() string {
	switch k {
	case FrontL4WLC:
		return "l4-wlc"
	case FrontContentAware:
		return "content-aware"
	default:
		return fmt.Sprintf("FrontendKind(%d)", int(k))
	}
}

// Frontend models the cluster's front-end box: a CPU resource doing
// routing decisions and packet relay. Both mechanisms relay every byte
// through this machine, so its relay bandwidth caps cluster throughput
// exactly as the testbed's 100 Mbit distributor NIC does.
type Frontend struct {
	eng  *Engine
	hw   HardwareParams
	kind FrontendKind

	CPU *Resource
	NIC *Resource

	nodes  []*Node
	byID   map[config.NodeID]*Node
	table  *urltable.Table
	picker loadbal.Picker

	routed  uint64
	noRoute uint64

	// observer, when set, sees each completed request with its node and
	// processing time — the simulation's stand-in for the distributor's
	// §3.3 load tracking.
	observer RequestObserver

	// adm, when non-nil, gates arrivals through the simulated SLO-class
	// admission ladder (EnableAdmission); nil routes every request.
	adm *frontAdmission
}

// RequestObserver receives each completed request's routing outcome.
type RequestObserver func(node config.NodeID, class content.Class, procTime time.Duration)

// NewFrontend builds the front end over nodes. table is required for
// FrontContentAware; picker defaults to WeightedLeastConn.
func NewFrontend(eng *Engine, hw HardwareParams, kind FrontendKind, nodes []*Node, table *urltable.Table, picker loadbal.Picker) (*Frontend, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("sim: frontend needs nodes")
	}
	if kind == FrontContentAware && table == nil {
		return nil, fmt.Errorf("sim: content-aware frontend needs a URL table")
	}
	if picker == nil {
		picker = loadbal.WeightedLeastConn{}
	}
	byID := make(map[config.NodeID]*Node, len(nodes))
	for _, n := range nodes {
		byID[n.Spec.ID] = n
	}
	return &Frontend{
		eng:    eng,
		hw:     hw,
		kind:   kind,
		CPU:    NewResource(eng),
		NIC:    NewResource(eng),
		nodes:  nodes,
		byID:   byID,
		table:  table,
		picker: picker,
	}, nil
}

// SetObserver registers the per-request completion callback. Call before
// traffic starts.
func (f *Frontend) SetObserver(fn RequestObserver) { f.observer = fn }

// Routed returns successfully routed requests.
func (f *Frontend) Routed() uint64 { return f.routed }

// NoRoute returns requests that could not be routed.
func (f *Frontend) NoRoute() uint64 { return f.noRoute }

// Route sends one request through the front end to a back end and calls
// done(ok) after the response has been relayed back through the front
// end. Requests routed this way are interactive-class; a stale-degraded
// answer still counts as ok (the client got bytes).
func (f *Frontend) Route(obj content.Object, done func(ok bool)) {
	f.RouteSLO(obj, SLOInteractive, func(o RouteOutcome) {
		done(o == RouteOK || o == RouteStale)
	})
}

// pick selects the back end per the front end's mechanism.
func (f *Frontend) pick(obj content.Object) (*Node, error) {
	var candidates []loadbal.NodeState
	if f.kind == FrontContentAware {
		rec, err := f.table.Route(obj.Path)
		if err != nil {
			return nil, err
		}
		candidates = make([]loadbal.NodeState, 0, len(rec.Locations))
		for _, id := range rec.Locations {
			n, ok := f.byID[id]
			if !ok || n.down {
				continue
			}
			candidates = append(candidates, loadbal.NodeState{
				ID:     id,
				Weight: n.Spec.EffectiveWeight(),
				Active: n.Active,
			})
		}
	} else {
		candidates = make([]loadbal.NodeState, 0, len(f.nodes))
		for _, n := range f.nodes {
			if n.down {
				continue
			}
			candidates = append(candidates, loadbal.NodeState{
				ID:     n.Spec.ID,
				Weight: n.Spec.EffectiveWeight(),
				Active: n.Active,
			})
		}
	}
	id, err := f.picker.Pick(candidates)
	if err != nil {
		return nil, err
	}
	n, ok := f.byID[id]
	if !ok {
		return nil, fmt.Errorf("sim: picker chose unknown node %s", id)
	}
	return n, nil
}

// Cluster bundles a simulated deployment: engine, nodes, optional NFS
// server, front end.
type Cluster struct {
	Engine   *Engine
	Nodes    []*Node
	NFS      *NFSNode
	Frontend *Frontend
	Table    *urltable.Table
}

// NodeByID returns the node with the given ID.
func (c *Cluster) NodeByID(id config.NodeID) (*Node, bool) {
	for _, n := range c.Nodes {
		if n.Spec.ID == id {
			return n, true
		}
	}
	return nil, false
}
