// Package sim is the discrete-event cluster simulator behind the
// evaluation harness. The paper's figures depend on three hardware effects
// a single development machine cannot exhibit — per-node memory-cache
// working sets, CPU-speed heterogeneity for dynamic requests, and
// head-of-line blocking between long and short requests — so the
// benchmarks run the placement schemes and front ends against simulated
// nodes parameterized with the §5.1 testbed's hardware. Routing reuses the
// real urltable and loadbal code, keeping the simulated control path
// identical to the live one.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// event is one scheduled callback.
type event struct {
	at  time.Duration
	seq uint64 // FIFO tiebreak for simultaneous events
	run func()
}

// eventHeap is a min-heap on (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		panic(fmt.Sprintf("sim: pushing %T onto event heap", x))
	}
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a deterministic discrete-event executor. The zero value is
// ready to use. Not safe for concurrent use: the simulation is
// single-threaded by design so runs are exactly reproducible.
type Engine struct {
	heap eventHeap
	now  time.Duration
	seq  uint64

	executed uint64
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Executed returns how many events have run.
func (e *Engine) Executed() uint64 { return e.executed }

// Schedule runs fn after delay of virtual time (clamped to now for
// negative delays).
func (e *Engine) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt runs fn at absolute virtual time at (clamped to now).
func (e *Engine) ScheduleAt(at time.Duration, fn func()) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.heap, &event{at: at, seq: e.seq, run: fn})
}

// Run executes events in order until the queue empties or virtual time
// would exceed until; it returns the virtual time reached.
func (e *Engine) Run(until time.Duration) time.Duration {
	for e.HasPendingEvents() {
		next, _ := e.PeekNextEventTime()
		if next > until {
			e.now = until
			return e.now
		}
		e.ProcessNextEvent()
	}
	if e.now < until {
		e.now = until
	}
	return e.now
}

// HasPendingEvents reports whether any event is queued. Together with
// PeekNextEventTime and ProcessNextEvent it lets an outer loop (a scenario
// runner, a multi-engine shared clock, or a test) drive the clock one
// event at a time instead of committing to a whole Run horizon.
func (e *Engine) HasPendingEvents() bool { return len(e.heap) > 0 }

// PeekNextEventTime returns the virtual time of the earliest queued event
// without running it. ok is false when the queue is empty.
func (e *Engine) PeekNextEventTime() (at time.Duration, ok bool) {
	if len(e.heap) == 0 {
		return 0, false
	}
	return e.heap[0].at, true
}

// ProcessNextEvent pops the earliest queued event, advances the clock to
// its timestamp and runs it. It returns false (leaving the clock
// untouched) when the queue is empty.
func (e *Engine) ProcessNextEvent() bool {
	if len(e.heap) == 0 {
		return false
	}
	popped, ok := heap.Pop(&e.heap).(*event)
	if !ok {
		panic("sim: event heap corrupted")
	}
	e.now = popped.at
	e.executed++
	popped.run()
	return true
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.heap) }
