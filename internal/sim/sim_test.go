package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"webcluster/internal/config"
	"webcluster/internal/content"
	"webcluster/internal/urltable"
	"webcluster/internal/workload"
)

func TestEngineOrdering(t *testing.T) {
	var eng Engine
	var got []int
	eng.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	eng.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	eng.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	eng.Run(time.Second)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if eng.Now() != time.Second {
		t.Fatalf("now = %v", eng.Now())
	}
	if eng.Executed() != 3 {
		t.Fatalf("executed = %d", eng.Executed())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	var eng Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		eng.Schedule(time.Millisecond, func() { got = append(got, i) })
	}
	eng.Run(time.Second)
	for i, v := range got {
		if v != i {
			t.Fatalf("simultaneous events out of FIFO order: %v", got)
		}
	}
}

func TestEngineRunUntilBoundary(t *testing.T) {
	var eng Engine
	fired := false
	eng.Schedule(100*time.Millisecond, func() { fired = true })
	eng.Run(50 * time.Millisecond)
	if fired {
		t.Fatal("event beyond horizon fired")
	}
	if eng.Pending() != 1 {
		t.Fatalf("pending = %d", eng.Pending())
	}
	eng.Run(200 * time.Millisecond)
	if !fired {
		t.Fatal("event not fired on resumed run")
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	var eng Engine
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 5 {
			eng.Schedule(time.Millisecond, recurse)
		}
	}
	eng.Schedule(0, recurse)
	eng.Run(time.Second)
	if depth != 5 {
		t.Fatalf("depth = %d", depth)
	}
}

func TestEngineNegativeDelayClamped(t *testing.T) {
	var eng Engine
	fired := false
	eng.Schedule(10*time.Millisecond, func() {
		eng.Schedule(-5*time.Millisecond, func() { fired = true })
	})
	eng.Run(time.Second)
	if !fired {
		t.Fatal("clamped event lost")
	}
}

// TestPropertyEngineMonotonicTime: whatever the schedule order, events run
// in non-decreasing virtual time.
func TestPropertyEngineMonotonicTime(t *testing.T) {
	f := func(delays []uint16) bool {
		var eng Engine
		var times []time.Duration
		for _, d := range delays {
			eng.Schedule(time.Duration(d)*time.Microsecond, func() {
				times = append(times, eng.Now())
			})
		}
		eng.Run(time.Hour)
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestResourceFIFO(t *testing.T) {
	var eng Engine
	r := NewResource(&eng)
	var done []int
	r.Enqueue(10*time.Millisecond, func() { done = append(done, 1) })
	r.Enqueue(5*time.Millisecond, func() { done = append(done, 2) })
	eng.Run(time.Second)
	// FIFO: job 1 finishes at 10ms, job 2 at 15ms despite being shorter.
	if len(done) != 2 || done[0] != 1 || done[1] != 2 {
		t.Fatalf("completion order = %v", done)
	}
	if r.Jobs() != 2 {
		t.Fatalf("jobs = %d", r.Jobs())
	}
}

func TestResourceQueueDelay(t *testing.T) {
	var eng Engine
	r := NewResource(&eng)
	r.Enqueue(100*time.Millisecond, func() {})
	if d := r.QueueDelay(); d != 100*time.Millisecond {
		t.Fatalf("queue delay = %v", d)
	}
	eng.Run(time.Second)
	if d := r.QueueDelay(); d != 0 {
		t.Fatalf("post-drain delay = %v", d)
	}
}

func TestResourceUtilization(t *testing.T) {
	var eng Engine
	r := NewResource(&eng)
	r.Enqueue(500*time.Millisecond, func() {})
	eng.Run(time.Second)
	if u := r.Utilization(); u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %g", u)
	}
}

func TestChunkedSharesResource(t *testing.T) {
	var eng Engine
	r := NewResource(&eng)
	var longDone, shortDone time.Duration
	// A 100ms transfer in 10ms chunks, with a 10ms job arriving at 5ms:
	// the short job slots in after the first chunk instead of waiting
	// the full 100ms.
	r.EnqueueChunked(100*time.Millisecond, 10*time.Millisecond, func() { longDone = eng.Now() })
	eng.Schedule(5*time.Millisecond, func() {
		r.Enqueue(10*time.Millisecond, func() { shortDone = eng.Now() })
	})
	eng.Run(time.Second)
	if shortDone >= longDone {
		t.Fatalf("short job starved: short %v, long %v", shortDone, longDone)
	}
	if shortDone > 40*time.Millisecond {
		t.Fatalf("short job delayed too long: %v", shortDone)
	}
	if longDone < 100*time.Millisecond {
		t.Fatalf("long transfer finished early: %v", longDone)
	}
}

func TestChunkedSmallJobDirect(t *testing.T) {
	var eng Engine
	r := NewResource(&eng)
	fired := false
	r.EnqueueChunked(time.Millisecond, 10*time.Millisecond, func() { fired = true })
	eng.Run(time.Second)
	if !fired {
		t.Fatal("small chunked job lost")
	}
}

func testNodeSpec(id string, mhz, mem int, disk config.DiskKind) config.NodeSpec {
	return config.NodeSpec{
		ID: config.NodeID(id), CPUMHz: mhz, MemoryMB: mem,
		DiskGB: 4, Disk: disk, Platform: config.LinuxApache,
	}
}

func TestNodeStaticCacheHitPath(t *testing.T) {
	var eng Engine
	hw := DefaultHardware()
	n := NewNode(&eng, hw, testNodeSpec("n1", 350, 128, config.DiskSCSI))
	n.Place("/a.html")
	obj := content.Object{Path: "/a.html", Size: 4096, Class: content.ClassHTML}

	var first, second time.Duration
	start := eng.Now()
	n.Serve(obj, func(ok bool) {
		if !ok {
			t.Error("serve failed")
		}
		first = eng.Now() - start
		mid := eng.Now()
		n.Serve(obj, func(ok bool) {
			second = eng.Now() - mid
		})
	})
	eng.Run(time.Minute)
	// The second (cached) serve must be much faster: no disk seek.
	if second >= first {
		t.Fatalf("cache hit %v not faster than miss %v", second, first)
	}
	if first < hw.SCSISeek {
		t.Fatalf("miss %v did not include a seek", first)
	}
	st := n.CacheStats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("cache stats = %+v", st)
	}
}

func TestNodeDynamicScalesWithCPU(t *testing.T) {
	hw := DefaultHardware()
	obj := content.Object{Path: "/cgi-bin/a.cgi", Size: 2048, Class: content.ClassCGI, CPUCost: 1}
	serveTime := func(mhz, mem int) time.Duration {
		var eng Engine
		n := NewNode(&eng, hw, testNodeSpec("n", mhz, mem, config.DiskSCSI))
		n.Place(obj.Path)
		var took time.Duration
		n.Serve(obj, func(bool) { took = eng.Now() })
		eng.Run(time.Minute)
		return took
	}
	fast := serveTime(350, 128)
	slow := serveTime(150, 128)
	thrash := serveTime(150, 64)
	if slow <= fast {
		t.Fatalf("150MHz (%v) not slower than 350MHz (%v)", slow, fast)
	}
	ratio := float64(slow) / float64(fast)
	if ratio < 2.0 || ratio > 2.6 {
		t.Fatalf("CPU scaling ratio = %.2f, want ≈2.33", ratio)
	}
	if float64(thrash)/float64(slow) < hw.DynThrashFactor*0.9 {
		t.Fatalf("thrash penalty missing: %v vs %v", thrash, slow)
	}
}

func TestNodeNotFound(t *testing.T) {
	var eng Engine
	n := NewNode(&eng, DefaultHardware(), testNodeSpec("n", 350, 128, config.DiskSCSI))
	okResult := true
	n.Serve(content.Object{Path: "/ghost.html", Size: 100, Class: content.ClassHTML},
		func(ok bool) { okResult = ok })
	eng.Run(time.Minute)
	if okResult {
		t.Fatal("serving unplaced content succeeded")
	}
	if n.NotFound() != 1 {
		t.Fatalf("notFound = %d", n.NotFound())
	}
}

func TestNodeUnplaceEvictsCache(t *testing.T) {
	var eng Engine
	n := NewNode(&eng, DefaultHardware(), testNodeSpec("n", 350, 128, config.DiskSCSI))
	n.Place("/a.html")
	obj := content.Object{Path: "/a.html", Size: 1024, Class: content.ClassHTML}
	n.Serve(obj, func(bool) {})
	eng.Run(time.Minute)
	n.Unplace("/a.html")
	var served bool
	n.Serve(obj, func(ok bool) { served = ok })
	eng.Run(2 * time.Minute)
	if served {
		t.Fatal("unplaced content still served (stale cache)")
	}
}

func TestNFSNodeServesMisses(t *testing.T) {
	var eng Engine
	hw := DefaultHardware()
	nfs := NewNFSNode(&eng, hw, testNodeSpec("nfs", 350, 128, config.DiskSCSI))
	web := NewNode(&eng, hw, testNodeSpec("web", 350, 128, config.DiskSCSI))
	web.UseNFS(nfs)
	obj := content.Object{Path: "/remote.html", Size: 4096, Class: content.ClassHTML}
	var ok1 bool
	var local, remote time.Duration
	start := eng.Now()
	web.Serve(obj, func(ok bool) {
		ok1 = ok
		remote = eng.Now() - start
	})
	eng.Run(time.Minute)
	if !ok1 {
		t.Fatal("NFS-backed serve failed")
	}
	if nfs.Ops() != 1 {
		t.Fatalf("NFS ops = %d", nfs.Ops())
	}
	// Local-disk service of the same object is faster than remote.
	var eng2 Engine
	web2 := NewNode(&eng2, hw, testNodeSpec("web2", 350, 128, config.DiskSCSI))
	web2.Place(obj.Path)
	start2 := eng2.Now()
	web2.Serve(obj, func(bool) { local = eng2.Now() - start2 })
	eng2.Run(time.Minute)
	if remote <= local {
		t.Fatalf("remote %v not slower than local %v", remote, local)
	}
}

func smallSite(t *testing.T, kind workload.Kind, objects int) *content.Site {
	t.Helper()
	site, err := workload.BuildSite(kind, objects, 1)
	if err != nil {
		t.Fatal(err)
	}
	return site
}

func TestPartitionSitePlacesEverything(t *testing.T) {
	site := smallSite(t, workload.KindB, 2000)
	spec := config.PaperTestbed()
	table, err := PartitionSite(site, spec, DefaultPlacementOptions())
	if err != nil {
		t.Fatal(err)
	}
	if table.Len() != site.Len() {
		t.Fatalf("placed %d of %d", table.Len(), site.Len())
	}
	fast := map[config.NodeID]bool{}
	slow := map[config.NodeID]bool{}
	bigDisk := map[config.NodeID]bool{}
	for _, n := range spec.Nodes {
		if n.CPUMHz == 350 {
			fast[n.ID] = true
		} else {
			slow[n.ID] = true
		}
		if n.DiskGB == 8 {
			bigDisk[n.ID] = true
		}
	}
	table.Walk(func(r urltable.Record) {
		if len(r.Locations) == 0 {
			t.Errorf("%s has no locations", r.Path)
			return
		}
		switch {
		case r.Class == content.ClassCGI || r.Class == content.ClassASP:
			for _, loc := range r.Locations {
				if !fast[loc] {
					t.Errorf("dynamic %s on slow node %s", r.Path, loc)
				}
			}
		case r.Class == content.ClassVideo:
			for _, loc := range r.Locations {
				if !bigDisk[loc] {
					t.Errorf("video %s on small-disk node %s", r.Path, loc)
				}
			}
		default:
			// Segregated statics avoid the dynamic (fast) group.
			for _, loc := range r.Locations {
				if fast[loc] {
					t.Errorf("static %s on dynamic node %s", r.Path, loc)
				}
			}
		}
	})
}

func TestPartitionSiteWorkloadAUsesAllNodes(t *testing.T) {
	site := smallSite(t, workload.KindA, 1000)
	spec := config.PaperTestbed()
	table, err := PartitionSite(site, spec, DefaultPlacementOptions())
	if err != nil {
		t.Fatal(err)
	}
	used := map[config.NodeID]bool{}
	table.Walk(func(r urltable.Record) {
		for _, loc := range r.Locations {
			used[loc] = true
		}
	})
	if len(used) != len(spec.Nodes) {
		t.Fatalf("static-only site uses %d of %d nodes", len(used), len(spec.Nodes))
	}
}

func TestPartitionSiteHotReplicas(t *testing.T) {
	site := smallSite(t, workload.KindA, 1000)
	spec := config.PaperTestbed()
	opts := DefaultPlacementOptions()
	table, err := PartitionSite(site, spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The hottest static object must be multi-copy.
	for rank := 0; rank < site.Len(); rank++ {
		obj := site.ByRank(rank)
		if obj.Class != content.ClassHTML && obj.Class != content.ClassImage {
			continue
		}
		rec, err := table.Lookup(obj.Path)
		if err != nil {
			t.Fatal(err)
		}
		if len(rec.Locations) != opts.HotReplicas {
			t.Fatalf("hottest static %s has %d copies, want %d",
				obj.Path, len(rec.Locations), opts.HotReplicas)
		}
		break
	}
}

func TestBuildDeploymentSchemes(t *testing.T) {
	site := smallSite(t, workload.KindA, 300)
	spec := config.PaperTestbed()
	for _, scheme := range []Scheme{SchemeFullReplication, SchemeNFS, SchemePartition} {
		eng := &Engine{}
		cluster, err := BuildDeployment(eng, DefaultHardware(), spec, site, scheme, DefaultPlacementOptions())
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if len(cluster.Nodes) != 9 {
			t.Fatalf("%v: nodes = %d", scheme, len(cluster.Nodes))
		}
		switch scheme {
		case SchemeNFS:
			if cluster.NFS == nil {
				t.Fatal("NFS scheme lacks the shared server")
			}
		case SchemePartition:
			if cluster.Table == nil {
				t.Fatal("partition scheme lacks a URL table")
			}
		}
	}
	if _, err := BuildDeployment(&Engine{}, DefaultHardware(), spec, site, Scheme(9), DefaultPlacementOptions()); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

// runSmall runs a tiny simulated experiment.
func runSmall(t *testing.T, kind workload.Kind, scheme Scheme, clients int) Result {
	t.Helper()
	site := smallSite(t, kind, 800)
	eng := &Engine{}
	cluster, err := BuildDeployment(eng, DefaultHardware(), config.PaperTestbed(), site, scheme, DefaultPlacementOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cluster, site, scheme, RunParams{
		Clients: clients,
		Warmup:  time.Second,
		Measure: 3 * time.Second,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunProducesThroughput(t *testing.T) {
	res := runSmall(t, workload.KindA, SchemePartition, 16)
	if res.Requests == 0 || res.Throughput() <= 0 {
		t.Fatalf("result = %+v", res)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d (misrouting?)", res.Errors)
	}
	if res.CacheHitRate <= 0 || res.CacheHitRate > 1 {
		t.Fatalf("cache hit rate = %g", res.CacheHitRate)
	}
}

func TestRunDeterministic(t *testing.T) {
	a := runSmall(t, workload.KindA, SchemeFullReplication, 8)
	b := runSmall(t, workload.KindA, SchemeFullReplication, 8)
	if a.Requests != b.Requests || a.Errors != b.Errors {
		t.Fatalf("nondeterministic: %d/%d vs %d/%d", a.Requests, a.Errors, b.Requests, b.Errors)
	}
}

func TestRunNFSBottleneck(t *testing.T) {
	repl := runSmall(t, workload.KindA, SchemeFullReplication, 32)
	nfs := runSmall(t, workload.KindA, SchemeNFS, 32)
	if nfs.NFSOps == 0 {
		t.Fatal("NFS scheme did no remote ops")
	}
	if nfs.Throughput() >= repl.Throughput() {
		t.Fatalf("NFS (%0.f r/s) not slower than replication (%0.f r/s)",
			nfs.Throughput(), repl.Throughput())
	}
}

func TestRunMoreClientsMoreThroughputUntilSaturation(t *testing.T) {
	low := runSmall(t, workload.KindA, SchemePartition, 2)
	high := runSmall(t, workload.KindA, SchemePartition, 24)
	if high.Throughput() <= low.Throughput() {
		t.Fatalf("throughput did not scale: %0.f vs %0.f", low.Throughput(), high.Throughput())
	}
}

func TestRunValidation(t *testing.T) {
	site := smallSite(t, workload.KindA, 100)
	eng := &Engine{}
	cluster, err := BuildDeployment(eng, DefaultHardware(), config.PaperTestbed(), site, SchemePartition, DefaultPlacementOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(cluster, site, SchemePartition, RunParams{Clients: 0}); err == nil {
		t.Fatal("zero clients accepted")
	}
}

func TestBuildCustomPicker(t *testing.T) {
	site := smallSite(t, workload.KindA, 300)
	spec := config.PaperTestbed()
	table, err := PartitionSite(site, spec, DefaultPlacementOptions())
	if err != nil {
		t.Fatal(err)
	}
	eng := &Engine{}
	cluster, err := BuildCustom(eng, DefaultHardware(), spec, table, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cluster, site, SchemePartition, RunParams{
		Clients: 8, Warmup: time.Second, Measure: 2 * time.Second, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 || res.Errors != 0 {
		t.Fatalf("custom build result = %+v", res)
	}
}

func TestFigure4SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	p := DefaultExperimentParams()
	p.Objects = 1500
	p.Warmup = 2 * time.Second
	p.Measure = 4 * time.Second
	p.SaturationClients = 40
	fig, err := Figure4(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 3 {
		t.Fatalf("rows = %d", len(fig.Rows))
	}
	for _, r := range fig.Rows {
		if r.Baseline <= 0 || r.Segregated <= 0 {
			t.Fatalf("row %s has zero throughput: %+v", r.Class, r)
		}
	}
	if out := fig.Render(); len(out) == 0 {
		t.Fatal("empty render")
	}
}

func TestFigureDataRender(t *testing.T) {
	fig := FigureData{
		Title:  "T",
		XLabel: "clients",
		Series: []Series{
			{Name: "s1", Points: []Point{{Clients: 8, Throughput: 100}}},
			{Name: "s2", Points: []Point{{Clients: 8, Throughput: 50.5}}},
		},
	}
	out := fig.Render()
	if out == "" || !containsAll(out, "T", "s1", "s2", "100.0", "50.5") {
		t.Fatalf("render = %q", out)
	}
}

// containsAll reports whether s contains every needle.
func containsAll(s string, needles ...string) bool {
	for _, n := range needles {
		if !contains(s, n) {
			return false
		}
	}
	return true
}

func contains(s, sub string) bool {
	return len(sub) == 0 || (len(s) >= len(sub) && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestPropertyPlacementCoversAllSeeds: for any seed, partition placement
// covers the whole site with at least one location each.
func TestPropertyPlacementCovers(t *testing.T) {
	spec := config.PaperTestbed()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		objects := rng.Intn(500) + 50
		site, err := workload.BuildSite(workload.KindB, objects, seed)
		if err != nil {
			return false
		}
		table, err := PartitionSite(site, spec, DefaultPlacementOptions())
		if err != nil {
			return false
		}
		if table.Len() != site.Len() {
			return false
		}
		ok := true
		table.Walk(func(r urltable.Record) {
			if len(r.Locations) == 0 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestAutoBalanceExperimentConverges(t *testing.T) {
	p := DefaultBalanceParams()
	p.Objects = 1200
	p.Clients = 32
	p.Rounds = 6
	p.Interval = 2 * time.Second
	data, err := AutoBalanceExperiment(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Points) != p.Rounds {
		t.Fatalf("points = %d", len(data.Points))
	}
	first, last := data.Points[0], data.Points[len(data.Points)-1]
	if last.Throughput < first.Throughput*1.5 {
		t.Fatalf("auto-replication did not converge: %.0f → %.0f req/s",
			first.Throughput, last.Throughput)
	}
	if last.Replicas <= p.Objects {
		t.Fatalf("no replicas created: %d copies of %d objects", last.Replicas, p.Objects)
	}
	totalActions := 0
	for _, pt := range data.Points {
		totalActions += pt.Actions
	}
	if totalActions == 0 {
		t.Fatal("planner issued no actions")
	}
	if out := data.Render(); out == "" {
		t.Fatal("empty render")
	}
}

func TestAutoBalanceExperimentValidation(t *testing.T) {
	p := DefaultBalanceParams()
	p.HotNodes = 0
	if _, err := AutoBalanceExperiment(p); err == nil {
		t.Fatal("invalid HotNodes accepted")
	}
}

func TestFrontendObserver(t *testing.T) {
	site := smallSite(t, workload.KindA, 100)
	spec := config.PaperTestbed()
	table, err := PartitionSite(site, spec, DefaultPlacementOptions())
	if err != nil {
		t.Fatal(err)
	}
	eng := &Engine{}
	cluster, err := BuildCustom(eng, DefaultHardware(), spec, table, nil)
	if err != nil {
		t.Fatal(err)
	}
	var observed int
	cluster.Frontend.SetObserver(func(node config.NodeID, class content.Class, procTime time.Duration) {
		observed++
		if procTime <= 0 {
			t.Errorf("non-positive processing time %v", procTime)
		}
	})
	obj := site.ByRank(0)
	done := 0
	for i := 0; i < 5; i++ {
		cluster.Frontend.Route(obj, func(bool) { done++ })
	}
	eng.Run(time.Minute)
	if done != 5 || observed != 5 {
		t.Fatalf("done=%d observed=%d", done, observed)
	}
}

func TestSensitivitySweepsRun(t *testing.T) {
	p := DefaultExperimentParams()
	p.Objects = 1000
	p.Warmup = time.Second
	p.Measure = 3 * time.Second
	p.SaturationClients = 24

	thrash, err := SensitivityThrash(p, []float64{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(thrash.Rows) != 2 {
		t.Fatalf("thrash rows = %d", len(thrash.Rows))
	}
	for _, r := range thrash.Rows {
		if r.Baseline <= 0 || r.Partition <= 0 {
			t.Fatalf("zero throughput: %+v", r)
		}
	}
	// Partition throughput is thrash-independent (no dynamics on weak
	// nodes); the baseline must not improve as thrash worsens.
	if thrash.Rows[1].Baseline > thrash.Rows[0].Baseline*1.05 {
		t.Fatalf("baseline improved under worse thrash: %+v", thrash.Rows)
	}

	scale, err := SensitivityScale(p, []int{500, 1500})
	if err != nil {
		t.Fatal(err)
	}
	if len(scale.Rows) != 2 {
		t.Fatalf("scale rows = %d", len(scale.Rows))
	}
	if out := thrash.Render() + scale.Render(); !containsAll(out, "thrash=1", "objects=500") {
		t.Fatalf("render = %q", out)
	}
}

// TestFigure2Ordering is the reproduction's regression guard: at load, the
// paper's configuration ordering must hold — NFS far below both, partition
// above full replication (§5.3, Figure 2).
func TestFigure2Ordering(t *testing.T) {
	p := DefaultExperimentParams()
	p.Objects = 8000
	p.Warmup = 6 * time.Second
	p.Measure = 12 * time.Second
	clients := 64

	run := func(scheme Scheme) Result {
		t.Helper()
		site, err := workload.BuildSite(workload.KindA, p.Objects, p.Seed)
		if err != nil {
			t.Fatal(err)
		}
		eng := &Engine{}
		cluster, err := BuildDeployment(eng, p.Hardware, p.Spec, site, scheme, p.Placement)
		if err != nil {
			t.Fatal(err)
		}
		rp := DefaultRunParams(clients)
		rp.Warmup, rp.Measure, rp.Seed = p.Warmup, p.Measure, p.Seed
		res, err := Run(cluster, site, scheme, rp)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	repl := run(SchemeFullReplication)
	nfs := run(SchemeNFS)
	part := run(SchemePartition)

	if nfs.Throughput() >= repl.Throughput()/2 {
		t.Fatalf("NFS (%.0f) not clearly below replication (%.0f)",
			nfs.Throughput(), repl.Throughput())
	}
	if part.Throughput() <= repl.Throughput() {
		t.Fatalf("partition (%.0f) not above replication (%.0f)",
			part.Throughput(), repl.Throughput())
	}
	// The mechanism: partitioning must show the better cache hit rate.
	if part.CacheHitRate <= repl.CacheHitRate {
		t.Fatalf("partition hit rate %.2f not above replication %.2f",
			part.CacheHitRate, repl.CacheHitRate)
	}
}

// TestFigure3PartitionWins guards the Workload B result: content-aware
// partitioning beats content-blind full replication under the dynamic mix.
func TestFigure3PartitionWins(t *testing.T) {
	p := DefaultExperimentParams()
	p.Objects = 8000
	p.Warmup = 6 * time.Second
	p.Measure = 12 * time.Second

	base, err := runPoint(p, workload.KindB, SchemeFullReplication, 64)
	if err != nil {
		t.Fatal(err)
	}
	part, err := runPoint(p, workload.KindB, SchemePartition, 64)
	if err != nil {
		t.Fatal(err)
	}
	if part.Throughput() <= base.Throughput() {
		t.Fatalf("partition (%.0f) not above replication (%.0f) on Workload B",
			part.Throughput(), base.Throughput())
	}
	// Segregation must protect static latency (the Figure 4 mechanism).
	staticRT := func(r Result) time.Duration {
		h, i := r.PerClass[content.ClassHTML], r.PerClass[content.ClassImage]
		n := h.Requests + i.Requests
		if n == 0 {
			return 0
		}
		return (h.TotalLatency + i.TotalLatency) / time.Duration(n)
	}
	if staticRT(part) >= staticRT(base) {
		t.Fatalf("segregated static RT %v not below baseline %v",
			staticRT(part), staticRT(base))
	}
}
