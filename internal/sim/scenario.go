package sim

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"webcluster/internal/config"
	"webcluster/internal/content"
	"webcluster/internal/loadbal"
	"webcluster/internal/urltable"
	"webcluster/internal/workload"
)

// Scenario replay: a declarative workload.Spec driven against a simulated
// deployment on the discrete-event engine. Where Run measures one
// steady-state window, RunScenario replays a whole timeline — diurnal
// rate curves, flash crowds, popularity churn, node maintenance — and
// emits per-interval statistics, so placement and admission policies are
// judged on day-long behaviour instead of a single operating point.
//
// Time compression is the discrete-event clock itself: virtual time
// advances event-to-event, so a 24 h scenario costs only its event
// processing (seconds of wall time for millions of requests). A spec's
// TimeScale additionally shrinks the timeline's *shape* — durations are
// divided, per-second rates kept — so CI can replay a compressed flash
// crowd with identical load levels and queueing behaviour.

// ScenarioOptions configures the deployment a scenario runs against.
type ScenarioOptions struct {
	// Cluster is the hardware; defaults to config.PaperTestbed().
	Cluster config.ClusterSpec
	// Hardware calibrates the simulated machines.
	Hardware HardwareParams
	// Scheme selects the placement scheme (default SchemePartition).
	Scheme Scheme
	// Placement tunes SchemePartition.
	Placement PlacementOptions
	// AutoBalance runs the §3.3 auto-replication planner at every
	// timeline interval (content-aware schemes only).
	AutoBalance bool
	// Planner tunes the auto-replication planner.
	Planner loadbal.PlannerOptions
	// Admission, when non-nil, arms the front end's simulated SLO-class
	// admission gate: each workload class maps to its sloClass and the
	// shedding ladder engages under overload. Nil routes everything.
	Admission *AdmissionParams
}

// DefaultScenarioOptions returns the standard scenario deployment: the
// paper testbed under the partition scheme with auto-replication on.
func DefaultScenarioOptions() ScenarioOptions {
	return ScenarioOptions{
		Cluster:     config.PaperTestbed(),
		Hardware:    DefaultHardware(),
		Scheme:      SchemePartition,
		Placement:   DefaultPlacementOptions(),
		AutoBalance: true,
		Planner: loadbal.PlannerOptions{
			Threshold:         0.25,
			MaxActionsPerNode: 8,
			MinHits:           20,
		},
	}
}

// RunScenario replays spec against a fresh deployment and returns the
// timeline. Deterministic for a given (spec, opts) pair: the same seed
// yields a byte-identical CSV.
func RunScenario(spec *workload.Spec, opts ScenarioOptions) (*Timeline, error) {
	if spec == nil {
		return nil, fmt.Errorf("sim: nil scenario spec")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(opts.Cluster.Nodes) == 0 {
		opts.Cluster = config.PaperTestbed()
	}
	if opts.Hardware == (HardwareParams{}) {
		opts.Hardware = DefaultHardware()
	}
	if opts.Scheme == 0 {
		opts.Scheme = SchemePartition
	}
	if opts.Planner == (loadbal.PlannerOptions{}) {
		opts.Planner = DefaultScenarioOptions().Planner
	}

	site, err := workload.BuildSite(spec.Kind(), spec.Objects, spec.Seed)
	if err != nil {
		return nil, err
	}
	eng := &Engine{}
	cluster, err := BuildDeployment(eng, opts.Hardware, opts.Cluster, site, opts.Scheme, opts.Placement)
	if err != nil {
		return nil, err
	}
	perm, err := workload.NewPermutation(site.Len(), spec.Seed+97)
	if err != nil {
		return nil, err
	}

	scale := spec.EffectiveTimeScale()
	sd := func(d time.Duration) time.Duration {
		return time.Duration(float64(d) / scale)
	}
	interval := sd(spec.EffectiveInterval())
	if interval <= 0 {
		return nil, fmt.Errorf("sim: interval %v collapses to zero at time scale %g", spec.EffectiveInterval(), scale)
	}
	end := sd(spec.Duration.D())
	if end <= 0 {
		return nil, fmt.Errorf("sim: duration %v collapses to zero at time scale %g", spec.Duration.D(), scale)
	}

	r := &scenarioRun{
		spec:       spec,
		opts:       opts,
		eng:        eng,
		cluster:    cluster,
		site:       site,
		perm:       perm,
		tracker:    loadbal.NewTracker(loadbal.PaperWeights()),
		scale:      scale,
		end:        end,
		interval:   interval,
		globalMult: 1,
	}
	cluster.Frontend.SetObserver(func(node config.NodeID, class content.Class, procTime time.Duration) {
		r.tracker.Record(node, class, procTime)
	})
	if opts.Admission != nil {
		cluster.Frontend.EnableAdmission(*opts.Admission)
	}

	// Interval closers first: at a shared timestamp they must run before
	// any same-instant completion (engine FIFO gives setup-time events
	// the smaller sequence numbers), so interval boundaries are exact.
	r.lastHits, r.lastMisses = r.cacheCounters()
	for t := interval; ; t += interval {
		boundary := t
		if boundary >= end {
			eng.ScheduleAt(end, func() { r.closeInterval(end) })
			break
		}
		eng.ScheduleAt(boundary, func() { r.closeInterval(boundary) })
	}

	// Timeline events second.
	for i := range spec.Events {
		ev := spec.Events[i]
		if ev.Kind == workload.EventNodeDown || ev.Kind == workload.EventNodeUp {
			if _, ok := cluster.NodeByID(config.NodeID(ev.Node)); !ok {
				return nil, fmt.Errorf("sim: events[%d]: unknown node %q", i, ev.Node)
			}
		}
		eng.ScheduleAt(sd(ev.At.D()), func() { r.applyEvent(ev, sd) })
	}

	// Client classes last.
	for i := range spec.Classes {
		if err := r.startClass(i); err != nil {
			return nil, err
		}
	}

	// Drive the clock with the step primitives: process everything up to
	// the scenario end, then stop. Whatever is still in flight past the
	// end is deliberately abandoned — the timeline measures (0, end].
	for eng.HasPendingEvents() {
		at, _ := eng.PeekNextEventTime()
		if at > end {
			break
		}
		eng.ProcessNextEvent()
	}

	return &Timeline{
		Name:            spec.Name,
		Interval:        interval,
		TimeScale:       scale,
		VirtualDuration: end,
		Points:          r.points,
		Decisions:       r.decisions,
		TotalRequests:   r.totalReqs,
		TotalErrors:     r.totalErrs,
		EventsExecuted:  eng.Executed(),
	}, nil
}

// scenarioRun is the mutable state of one replay.
type scenarioRun struct {
	spec    *workload.Spec
	opts    ScenarioOptions
	eng     *Engine
	cluster *Cluster
	site    *content.Site
	perm    *workload.Permutation
	tracker *loadbal.Tracker

	scale    float64
	end      time.Duration
	interval time.Duration

	classes    []*classDriver
	globalMult float64
	downNodes  int

	// Current-interval accumulators.
	intervalStart time.Duration
	reqs, errs    int64
	lat           []time.Duration
	// Per-SLO-class accumulators: latency over served (OK or stale)
	// requests, admission sheds, and stale-degraded serves.
	classLat  [NumSLOClasses][]time.Duration
	classShed [NumSLOClasses]int64
	staleSrv  int64

	lastHits, lastMisses int64

	points    []TimelinePoint
	decisions []DecisionPoint
	totalReqs int64
	totalErrs int64
	finished  bool
}

// classDriver drives one client class.
type classDriver struct {
	run     *scenarioRun
	spec    workload.ClassSpec
	sampler workload.Sampler
	zipf    *workload.Zipf
	mult    float64
	slo     SLOClass
}

// startClass builds and schedules the class at index i.
func (r *scenarioRun) startClass(i int) error {
	cs := r.spec.Classes[i]
	zipfS := cs.ZipfS
	if zipfS == 0 {
		zipfS = workload.DefaultZipfS
	}
	// Per-class streams: the class index is mixed into the seed so
	// classes with identical declared seeds still draw independently.
	base := r.spec.Seed + cs.Seed + int64(i+1)*15485863
	z, err := workload.NewZipf(r.site.Len(), zipfS, base+1)
	if err != nil {
		return fmt.Errorf("sim: classes[%d]: %w", i, err)
	}
	slo, err := ParseSLOClass(cs.SloClass)
	if err != nil {
		return fmt.Errorf("sim: classes[%d]: %w", i, err)
	}
	c := &classDriver{run: r, spec: cs, zipf: z, mult: 1, slo: slo}
	if cs.Arrival.Process == workload.ProcessClosed {
		r.classes = append(r.classes, c)
		for k := 0; k < cs.Arrival.Clients; k++ {
			client := c
			var issue func()
			issue = func() {
				if r.eng.Now() >= r.end {
					return
				}
				started := r.eng.Now()
				r.cluster.Frontend.RouteSLO(client.draw(), client.slo, func(o RouteOutcome) {
					r.record(started, r.eng.Now(), client.slo, o)
					if think := cs.Arrival.Think.D(); think > 0 {
						r.eng.Schedule(think, issue)
						return
					}
					issue()
				})
			}
			// Stagger closed-loop starts across the first interval
			// fraction to avoid a t=0 thundering herd.
			start := time.Duration(k) * time.Second / time.Duration(cs.Arrival.Clients)
			r.eng.Schedule(start, issue)
		}
		return nil
	}
	sampler, err := workload.NewSampler(cs.Arrival, base+2)
	if err != nil {
		return fmt.Errorf("sim: classes[%d]: %w", i, err)
	}
	c.sampler = sampler
	r.classes = append(r.classes, c)
	r.eng.Schedule(0, c.loop)
	return nil
}

// loop schedules the class's next open-loop arrival. The instantaneous
// rate is sampled at scheduling time — the curve is piecewise linear and
// slow relative to inter-arrival gaps, so this is the usual
// rate-modulated renewal approximation.
func (c *classDriver) loop() {
	r := c.run
	if r.eng.Now() >= r.end {
		return
	}
	// The diurnal curve is declared in pre-TimeScale coordinates.
	unscaled := time.Duration(float64(r.eng.Now()) * r.scale)
	rate := c.spec.Arrival.RatePerSec * r.spec.CurveMultiplier(unscaled) * c.mult * r.globalMult
	gap := workload.Gap(c.sampler.Next(), rate)
	r.eng.Schedule(gap, func() {
		if r.eng.Now() >= r.end {
			return
		}
		started := r.eng.Now()
		r.cluster.Frontend.RouteSLO(c.draw(), c.slo, func(o RouteOutcome) {
			r.record(started, r.eng.Now(), c.slo, o)
		})
		c.loop()
	})
}

// draw picks the class's next object through the shared popularity
// permutation.
func (c *classDriver) draw() content.Object {
	return c.run.site.ByRank(c.run.perm.Apply(c.zipf.Next()))
}

// record accumulates one completed request into the current interval. A
// stale-degraded answer counts as a success (the client got bytes); a
// shed or unroutable request counts as an error. Per-class latency only
// accumulates over served requests — a shed costs the client a refusal,
// not a latency sample.
func (r *scenarioRun) record(started, finished time.Duration, slo SLOClass, o RouteOutcome) {
	if r.finished {
		return
	}
	r.reqs++
	r.totalReqs++
	r.lat = append(r.lat, finished-started)
	switch o {
	case RouteOK:
		r.classLat[slo] = append(r.classLat[slo], finished-started)
	case RouteStale:
		r.classLat[slo] = append(r.classLat[slo], finished-started)
		r.staleSrv++
	case RouteShed:
		r.classShed[slo]++
		r.errs++
		r.totalErrs++
	default: // RouteError
		r.errs++
		r.totalErrs++
	}
}

// closeInterval seals the interval ending at `at`, appends its timeline
// point, and runs the auto-replication planner when enabled.
func (r *scenarioRun) closeInterval(at time.Duration) {
	if r.finished {
		return
	}
	hits, misses := r.cacheCounters()
	dh, dm := hits-r.lastHits, misses-r.lastMisses
	r.lastHits, r.lastMisses = hits, misses
	hitRate := 0.0
	if dh+dm > 0 {
		hitRate = float64(dh) / float64(dh+dm)
	}

	// Per-node loads for this interval; down nodes are excluded so the
	// planner neither targets them nor counts their idleness as
	// imbalance.
	allLoads := r.tracker.IntervalLoads(r.opts.Cluster.Nodes)
	loads := make(map[config.NodeID]float64, len(allLoads))
	for _, n := range r.cluster.Nodes {
		if !n.Down() {
			loads[n.Spec.ID] = allLoads[n.Spec.ID]
		}
	}

	width := at - r.intervalStart
	p50, p99 := latQuantile(r.lat, 0.50), latQuantile(r.lat, 0.99)
	point := TimelinePoint{
		Index:        len(r.points),
		Start:        r.intervalStart,
		End:          at,
		Requests:     r.reqs,
		Errors:       r.errs,
		P50:          p50,
		P99:          p99,
		LoadCV:       loadCV(loads),
		Replicas:     r.replicaCount(),
		CacheHitRate: hitRate,
		DownNodes:    r.downNodes,
		ClassShed:    r.classShed,
		StaleServed:  r.staleSrv,
	}
	for i := range point.ClassP99 {
		point.ClassP99[i] = latQuantile(r.classLat[i], 0.99)
	}
	if width > 0 {
		point.RPS = float64(r.reqs) / width.Seconds()
	}
	r.points = append(r.points, point)
	r.intervalStart = at
	r.reqs, r.errs = 0, 0
	r.lat = r.lat[:0]
	for i := range r.classLat {
		r.classLat[i] = r.classLat[i][:0]
	}
	r.classShed = [NumSLOClasses]int64{}
	r.staleSrv = 0

	if at >= r.end {
		r.finished = true
		return
	}
	if r.opts.AutoBalance && r.cluster.Table != nil {
		r.applyPlan(loads, at, point.Index)
	}
}

// applyPlan runs the §3.3 planner on the interval loads and applies its
// placement actions to the table and nodes (copies are instantaneous at
// this scale, as in AutoBalanceExperiment). Every decision — applied or
// not — is appended to the replay's decision journal with the planner
// inputs that produced it.
func (r *scenarioRun) applyPlan(loads map[config.NodeID]float64, at time.Duration, interval int) {
	decs := loadbal.PlanDecisions(loads, r.cluster.Table, r.opts.Planner)
	for _, d := range decs {
		applied := false
		switch d.Kind {
		case loadbal.ActionReplicate:
			if err := r.cluster.Table.AddLocation(d.Path, d.Target); err == nil {
				applied = true
				if n, ok := r.cluster.NodeByID(d.Target); ok {
					n.Place(d.Path)
				}
			}
		case loadbal.ActionOffload:
			if err := r.cluster.Table.RemoveLocation(d.Path, d.Target); err == nil {
				applied = true
				if n, ok := r.cluster.NodeByID(d.Target); ok {
					n.Unplace(d.Path)
				}
			}
		}
		r.decisions = append(r.decisions, DecisionPoint{
			Interval:   interval,
			At:         at,
			Kind:       d.Kind.String(),
			Path:       d.Path,
			Source:     string(d.Source),
			Target:     string(d.Target),
			Hits:       d.Hits,
			LoadCV:     d.LoadCV,
			SourceLoad: d.SourceLoad,
			TargetLoad: d.TargetLoad,
			Reason:     d.Reason,
			Rejected:   strings.Join(d.Rejected, ";"),
			Applied:    applied,
		})
	}
	r.cluster.Table.ResetHits()
}

// applyEvent executes one timeline event.
func (r *scenarioRun) applyEvent(ev workload.EventSpec, sd func(time.Duration) time.Duration) {
	switch ev.Kind {
	case workload.EventRate:
		targets := r.eventTargets(ev.Class)
		for _, c := range targets {
			c.mult *= ev.X
		}
		if ev.Duration > 0 {
			x := ev.X
			r.eng.Schedule(sd(ev.Duration.D()), func() {
				for _, c := range targets {
					c.mult /= x
				}
			})
		}
	case workload.EventFlashCrowd:
		r.perm.PromoteRandom(ev.HotObjects)
		if ev.X > 0 {
			r.globalMult *= ev.X
			if ev.Duration > 0 {
				x := ev.X
				r.eng.Schedule(sd(ev.Duration.D()), func() { r.globalMult /= x })
			}
		}
	case workload.EventChurn:
		frac := ev.Fraction
		if frac == 0 {
			frac = 1
		}
		r.perm.Shuffle(frac)
	case workload.EventNodeDown:
		if n, ok := r.cluster.NodeByID(config.NodeID(ev.Node)); ok && !n.Down() {
			n.SetDown(true)
			r.downNodes++
		}
	case workload.EventNodeUp:
		if n, ok := r.cluster.NodeByID(config.NodeID(ev.Node)); ok && n.Down() {
			n.SetDown(false)
			r.downNodes--
		}
	}
}

// eventTargets resolves a rate event's class scope.
func (r *scenarioRun) eventTargets(class string) []*classDriver {
	if class == "" {
		return r.classes
	}
	for _, c := range r.classes {
		if c.spec.ID == class {
			return []*classDriver{c}
		}
	}
	return nil
}

// cacheCounters sums page-cache hits and misses across the deployment.
func (r *scenarioRun) cacheCounters() (hits, misses int64) {
	for _, n := range r.cluster.Nodes {
		st := n.CacheStats()
		hits += st.Hits
		misses += st.Misses
	}
	if r.cluster.NFS != nil {
		st := r.cluster.NFS.CacheStats()
		hits += st.Hits
		misses += st.Misses
	}
	return hits, misses
}

// replicaCount returns the total number of content copies.
func (r *scenarioRun) replicaCount() int {
	if r.cluster.Table != nil {
		replicas := 0
		r.cluster.Table.Walk(func(rec urltable.Record) { replicas += len(rec.Locations) })
		return replicas
	}
	if r.cluster.NFS != nil {
		return r.site.Len()
	}
	return len(r.cluster.Nodes) * r.site.Len()
}

// loadCV computes the coefficient of variation over loads in sorted node
// order, so float summation order — and therefore the emitted CSV — is
// identical across runs.
func loadCV(loads map[config.NodeID]float64) float64 {
	if len(loads) == 0 {
		return 0
	}
	ids := make([]config.NodeID, 0, len(loads))
	for id := range loads {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var sum float64
	for _, id := range ids {
		sum += loads[id]
	}
	mean := sum / float64(len(ids))
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, id := range ids {
		d := loads[id] - mean
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(ids))) / mean
}

// latQuantile returns the q-quantile of lat by nearest rank; lat is
// sorted in place.
func latQuantile(lat []time.Duration, q float64) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	idx := int(q * float64(len(lat)))
	if idx >= len(lat) {
		idx = len(lat) - 1
	}
	return lat[idx]
}
