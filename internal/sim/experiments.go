package sim

import (
	"fmt"
	"strings"
	"time"

	"webcluster/internal/config"
	"webcluster/internal/content"
	"webcluster/internal/workload"
)

// ExperimentParams sizes the figure-regeneration experiments. The figures
// plot throughput against WebBench client count for the §5.1 testbed.
type ExperimentParams struct {
	// Spec is the cluster; defaults to config.PaperTestbed().
	Spec config.ClusterSpec
	// Hardware calibrates the simulated machines.
	Hardware HardwareParams
	// Objects sizes the site. The figure workloads use enough content
	// that the full working set exceeds one node's memory — the regime
	// the paper's cache argument (§5.3) is about.
	Objects int
	// ClientCounts is the x-axis of Figures 2 and 3.
	ClientCounts []int
	// SaturationClients is the Figure 4 operating point (120 in §5.3).
	SaturationClients int
	// Seed drives all randomness.
	Seed int64
	// Run overrides the per-point run parameters' windows.
	Warmup, Measure time.Duration
	// Placement tunes configuration 3.
	Placement PlacementOptions
}

// DefaultExperimentParams returns the standard evaluation setup.
func DefaultExperimentParams() ExperimentParams {
	return ExperimentParams{
		Spec:              config.PaperTestbed(),
		Hardware:          DefaultHardware(),
		Objects:           16000,
		ClientCounts:      []int{8, 16, 32, 48, 64, 80, 96, 120},
		SaturationClients: 120,
		Seed:              1,
		Warmup:            8 * time.Second,
		Measure:           20 * time.Second,
		Placement:         DefaultPlacementOptions(),
	}
}

// Point is one (clients, throughput) sample of a figure series.
type Point struct {
	Clients    int
	Throughput float64
	Result     Result
}

// Series is one curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// FigureData is a full regenerated figure.
type FigureData struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Render formats the figure as an aligned text table, one row per client
// count — the form the paper's bar/line charts reduce to.
func (f FigureData) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	fmt.Fprintf(&b, "%-10s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%22s", s.Name)
	}
	b.WriteByte('\n')
	if len(f.Series) == 0 {
		return b.String()
	}
	for i := range f.Series[0].Points {
		fmt.Fprintf(&b, "%-10d", f.Series[0].Points[i].Clients)
		for _, s := range f.Series {
			fmt.Fprintf(&b, "%22.1f", s.Points[i].Throughput)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// runPoint builds a fresh deployment and measures one (scheme, clients)
// cell.
func runPoint(p ExperimentParams, kind workload.Kind, scheme Scheme, clients int) (Result, error) {
	site, err := workload.BuildSite(kind, p.Objects, p.Seed)
	if err != nil {
		return Result{}, err
	}
	eng := &Engine{}
	cluster, err := BuildDeployment(eng, p.Hardware, p.Spec, site, scheme, p.Placement)
	if err != nil {
		return Result{}, err
	}
	rp := DefaultRunParams(clients)
	rp.Seed = p.Seed
	if p.Warmup > 0 {
		rp.Warmup = p.Warmup
	}
	if p.Measure > 0 {
		rp.Measure = p.Measure
	}
	return Run(cluster, site, scheme, rp)
}

// sweep measures one scheme across all client counts.
func sweep(p ExperimentParams, kind workload.Kind, scheme Scheme, name string) (Series, error) {
	s := Series{Name: name, Points: make([]Point, 0, len(p.ClientCounts))}
	for _, clients := range p.ClientCounts {
		res, err := runPoint(p, kind, scheme, clients)
		if err != nil {
			return Series{}, fmt.Errorf("sim: %s at %d clients: %w", name, clients, err)
		}
		s.Points = append(s.Points, Point{
			Clients:    clients,
			Throughput: res.Throughput(),
			Result:     res,
		})
	}
	return s, nil
}

// Figure2 regenerates "Benefit of content partition (Workload A)":
// throughput vs clients for (1) full replication + L4 WLC, (2) NFS + L4
// WLC, (3) partition + content-aware routing.
func Figure2(p ExperimentParams) (FigureData, error) {
	fig := FigureData{
		Title:  "Figure 2: Benefit of content partition (Workload A)",
		XLabel: "clients",
		YLabel: "req/s",
	}
	for _, cfg := range []struct {
		scheme Scheme
		name   string
	}{
		{SchemeFullReplication, "replication+L4/WLC"},
		{SchemeNFS, "NFS+L4/WLC"},
		{SchemePartition, "partition+content-aware"},
	} {
		s, err := sweep(p, workload.KindA, cfg.scheme, cfg.name)
		if err != nil {
			return FigureData{}, err
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Figure3 regenerates "Benefit of content partition (Workload B)":
// throughput vs clients for full replication + WLC versus partition +
// content-aware routing under the dynamic-content workload.
func Figure3(p ExperimentParams) (FigureData, error) {
	fig := FigureData{
		Title:  "Figure 3: Benefit of content partition (Workload B)",
		XLabel: "clients",
		YLabel: "req/s",
	}
	for _, cfg := range []struct {
		scheme Scheme
		name   string
	}{
		{SchemeFullReplication, "replication+L4/WLC"},
		{SchemePartition, "partition+content-aware"},
	} {
		s, err := sweep(p, workload.KindB, cfg.scheme, cfg.name)
		if err != nil {
			return FigureData{}, err
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Figure4Row is one content class's saturation comparison.
type Figure4Row struct {
	Class       string
	Baseline    float64 // req/s without segregation (full replication + WLC)
	Segregated  float64 // req/s with content-aware segregation
	GainPercent float64
	// Mean response times under each scheme (the paper's causal story:
	// segregation keeps short requests from queueing behind long ones).
	BaselineRT   time.Duration
	SegregatedRT time.Duration
}

// Figure4Data is the regenerated Figure 4.
type Figure4Data struct {
	Clients int
	Rows    []Figure4Row
}

// Render formats the figure as a table.
func (f Figure4Data) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: Benefit of content segregation (%d clients, Workload B)\n", f.Clients)
	fmt.Fprintf(&b, "%-10s%14s%14s%10s%14s%14s\n",
		"class", "baseline r/s", "segregated", "gain", "baseline RT", "segregated RT")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-10s%14.1f%14.1f%9.0f%%%14v%14v\n",
			r.Class, r.Baseline, r.Segregated, r.GainPercent,
			r.BaselineRT.Round(100*time.Microsecond), r.SegregatedRT.Round(100*time.Microsecond))
	}
	return b.String()
}

// Figure4 regenerates "Benefit of content segregation": per-class
// throughput at saturation (120 clients), content segregation versus full
// replication + WLC. The paper reports +45% CGI, +42% ASP, +58% static.
func Figure4(p ExperimentParams) (Figure4Data, error) {
	base, err := runPoint(p, workload.KindB, SchemeFullReplication, p.SaturationClients)
	if err != nil {
		return Figure4Data{}, fmt.Errorf("sim: figure 4 baseline: %w", err)
	}
	seg, err := runPoint(p, workload.KindB, SchemePartition, p.SaturationClients)
	if err != nil {
		return Figure4Data{}, fmt.Errorf("sim: figure 4 segregated: %w", err)
	}
	gain := func(b, s float64) float64 {
		if b == 0 {
			return 0
		}
		return (s - b) / b * 100
	}
	staticRT := func(r Result) time.Duration {
		h := r.PerClass[content.ClassHTML]
		i := r.PerClass[content.ClassImage]
		n := h.Requests + i.Requests
		if n == 0 {
			return 0
		}
		return (h.TotalLatency + i.TotalLatency) / time.Duration(n)
	}
	rows := []Figure4Row{
		{
			Class:        "cgi",
			Baseline:     base.ClassThroughput(content.ClassCGI),
			Segregated:   seg.ClassThroughput(content.ClassCGI),
			BaselineRT:   base.PerClass[content.ClassCGI].MeanLatency(),
			SegregatedRT: seg.PerClass[content.ClassCGI].MeanLatency(),
		},
		{
			Class:        "asp",
			Baseline:     base.ClassThroughput(content.ClassASP),
			Segregated:   seg.ClassThroughput(content.ClassASP),
			BaselineRT:   base.PerClass[content.ClassASP].MeanLatency(),
			SegregatedRT: seg.PerClass[content.ClassASP].MeanLatency(),
		},
		{
			Class:        "static",
			Baseline:     base.StaticThroughput(),
			Segregated:   seg.StaticThroughput(),
			BaselineRT:   staticRT(base),
			SegregatedRT: staticRT(seg),
		},
	}
	for i := range rows {
		rows[i].GainPercent = gain(rows[i].Baseline, rows[i].Segregated)
	}
	return Figure4Data{Clients: p.SaturationClients, Rows: rows}, nil
}
