package sim

import (
	"fmt"
	"strings"

	"webcluster/internal/workload"
)

// Sensitivity analysis for the two calibration knobs EXPERIMENTS.md calls
// out as the ones that move the headline results: the dynamic-execution
// thrash factor (drives Figures 3/4) and the site scale relative to node
// memory (drives Figure 2). Reviewers of a reproduction should be able to
// see how conclusions vary with the modelling assumptions, not just the
// defaults.

// SensitivityRow is one knob setting's outcome.
type SensitivityRow struct {
	Setting   string
	Baseline  float64
	Partition float64
	GainPct   float64
}

// SensitivityData is one sweep.
type SensitivityData struct {
	Title string
	Rows  []SensitivityRow
}

// Render formats the sweep as a table.
func (d SensitivityData) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", d.Title)
	fmt.Fprintf(&b, "%-16s%14s%14s%10s\n", "setting", "baseline r/s", "partition", "gain")
	for _, r := range d.Rows {
		fmt.Fprintf(&b, "%-16s%14.1f%14.1f%9.0f%%\n", r.Setting, r.Baseline, r.Partition, r.GainPct)
	}
	return b.String()
}

// gainPct computes the relative improvement.
func gainPct(base, part float64) float64 {
	if base == 0 {
		return 0
	}
	return (part - base) / base * 100
}

// SensitivityThrash sweeps DynThrashFactor and reports the Workload B
// saturation comparison (the Figure 3/4 operating point) per setting.
func SensitivityThrash(p ExperimentParams, factors []float64) (SensitivityData, error) {
	data := SensitivityData{
		Title: fmt.Sprintf("Sensitivity: DynThrashFactor (Workload B, %d clients)", p.SaturationClients),
	}
	for _, f := range factors {
		pp := p
		pp.Hardware.DynThrashFactor = f
		base, err := runPoint(pp, workload.KindB, SchemeFullReplication, pp.SaturationClients)
		if err != nil {
			return SensitivityData{}, fmt.Errorf("sim: thrash %g baseline: %w", f, err)
		}
		part, err := runPoint(pp, workload.KindB, SchemePartition, pp.SaturationClients)
		if err != nil {
			return SensitivityData{}, fmt.Errorf("sim: thrash %g partition: %w", f, err)
		}
		data.Rows = append(data.Rows, SensitivityRow{
			Setting:   fmt.Sprintf("thrash=%g", f),
			Baseline:  base.Throughput(),
			Partition: part.Throughput(),
			GainPct:   gainPct(base.Throughput(), part.Throughput()),
		})
	}
	return data, nil
}

// SensitivityScale sweeps the site object count and reports the Workload A
// saturation comparison (the Figure 2 cache-working-set effect).
func SensitivityScale(p ExperimentParams, objectCounts []int) (SensitivityData, error) {
	data := SensitivityData{
		Title: fmt.Sprintf("Sensitivity: site scale (Workload A, %d clients)", p.SaturationClients),
	}
	for _, n := range objectCounts {
		pp := p
		pp.Objects = n
		base, err := runPoint(pp, workload.KindA, SchemeFullReplication, pp.SaturationClients)
		if err != nil {
			return SensitivityData{}, fmt.Errorf("sim: scale %d baseline: %w", n, err)
		}
		part, err := runPoint(pp, workload.KindA, SchemePartition, pp.SaturationClients)
		if err != nil {
			return SensitivityData{}, fmt.Errorf("sim: scale %d partition: %w", n, err)
		}
		data.Rows = append(data.Rows, SensitivityRow{
			Setting:   fmt.Sprintf("objects=%d", n),
			Baseline:  base.Throughput(),
			Partition: part.Throughput(),
			GainPct:   gainPct(base.Throughput(), part.Throughput()),
		})
	}
	return data, nil
}
