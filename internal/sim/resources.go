package sim

import (
	"time"

	"webcluster/internal/config"
)

// Resource is a single-server FIFO queue with unbounded buffering: the
// model for a node's CPU, its disk, and its network interface. Jobs are
// served in arrival order, so one long job delays everything queued behind
// it — the head-of-line blocking that §5.3's segregation experiment
// (Figure 4) turns into throughput.
type Resource struct {
	eng *Engine
	// free is when the server next becomes idle.
	free time.Duration

	busy time.Duration // summed service time, for utilization
	jobs uint64
}

// NewResource returns a resource scheduled on eng.
func NewResource(eng *Engine) *Resource {
	return &Resource{eng: eng}
}

// Enqueue appends a job with the given service demand and schedules done
// at its completion time.
func (r *Resource) Enqueue(service time.Duration, done func()) {
	if service < 0 {
		service = 0
	}
	start := r.eng.Now()
	if r.free > start {
		start = r.free
	}
	r.free = start + service
	r.busy += service
	r.jobs++
	r.eng.ScheduleAt(r.free, done)
}

// EnqueueChunked splits a long service demand into chunk-sized pieces,
// re-queueing after each piece, so concurrent jobs share the resource
// approximately fairly — the packet-level multiplexing a real network
// link (or a disk elevator between requests) performs. done fires when
// the final chunk completes.
func (r *Resource) EnqueueChunked(service, chunk time.Duration, done func()) {
	if chunk <= 0 || service <= chunk {
		r.Enqueue(service, done)
		return
	}
	remaining := service - chunk
	r.Enqueue(chunk, func() { r.EnqueueChunked(remaining, chunk, done) })
}

// QueueDelay returns how long a job arriving now would wait before
// service begins.
func (r *Resource) QueueDelay() time.Duration {
	if d := r.free - r.eng.Now(); d > 0 {
		return d
	}
	return 0
}

// Utilization returns busy time divided by elapsed virtual time.
func (r *Resource) Utilization() float64 {
	if r.eng.Now() == 0 {
		return 0
	}
	return float64(r.busy) / float64(r.eng.Now())
}

// Jobs returns the number of jobs served or in service.
func (r *Resource) Jobs() uint64 { return r.jobs }

// HardwareParams calibrates the simulated hardware. All CPU costs are
// given at the reference 350 MHz and scaled by 350/CPUMHz on slower nodes.
type HardwareParams struct {
	// ParseCPU is the per-request protocol/parse cost at 350 MHz.
	ParseCPU time.Duration
	// ExecUnitCPU is the CPU time of one dynamic-content work unit
	// (content.Object.CPUCost) at 350 MHz.
	ExecUnitCPU time.Duration
	// MemCopyBytesPerSec is memory bandwidth for serving a cache hit.
	MemCopyBytesPerSec float64
	// NICBytesPerSec is per-node network bandwidth (100 Mbit full
	// duplex in the testbed).
	NICBytesPerSec float64
	// IDESeek/SCSISeek are per-access disk positioning latencies.
	IDESeek  time.Duration
	SCSISeek time.Duration
	// IDEBytesPerSec/SCSIBytesPerSec are sequential disk bandwidths.
	IDEBytesPerSec  float64
	SCSIBytesPerSec float64
	// CacheFraction is the share of node memory used as page cache.
	CacheFraction float64
	// DynReserveMB is the memory the CGI/ASP execution environment
	// (interpreters, per-request heaps) claims on any node that hosts
	// dynamic content, shrinking its page cache. This is the
	// "interference between different requests" §1.2 describes: under
	// full replication every node pays it; under segregation the
	// static nodes keep their whole cache.
	DynReserveMB int
	// NFSPerOpCPU is the shared file server's per-operation RPC cost
	// (at 350 MHz); this is what makes it a bottleneck under load.
	NFSPerOpCPU time.Duration
	// NFSClientOverhead is the fixed remote-file-I/O latency a web node
	// pays per NFS access (request marshalling, protocol round trip).
	NFSClientOverhead time.Duration
	// DynThrashMemMB is the memory floor below which dynamic-content
	// execution thrashes: nodes with less RAM pay DynThrashFactor× the
	// execution cost. This models the paper's observation that a heavy
	// CGI/database request on a weak node takes "orders of magnitude
	// more time" — interpreter and working-set pressure on a 64 MB
	// machine, not just the MHz ratio.
	DynThrashMemMB  int
	DynThrashFactor float64
	// RouteLookupCPU is the distributor's URL-table lookup cost (§5.2
	// measures ~4.32 µs live).
	RouteLookupCPU time.Duration
	// L4ForwardCPU is the L4 router's per-connection decision cost.
	L4ForwardCPU time.Duration
	// FrontendRelayBytesPerSec is the front end's packet-relay
	// bandwidth (header rewriting runs near line rate).
	FrontendRelayBytesPerSec float64
}

// DefaultHardware returns the calibration used throughout the evaluation,
// chosen to match late-1990s commodity parts: 100 Mbit Ethernet, IDE vs
// SCSI disks, and CGI costs from the paper's cited server-performance
// analysis (Iyengar et al.: dynamic requests cost 10-100× static ones).
func DefaultHardware() HardwareParams {
	return HardwareParams{
		ParseCPU:                 200 * time.Microsecond,
		ExecUnitCPU:              9 * time.Millisecond,
		MemCopyBytesPerSec:       80e6,
		NICBytesPerSec:           12.5e6, // 100 Mbit
		IDESeek:                  12 * time.Millisecond,
		SCSISeek:                 7 * time.Millisecond,
		IDEBytesPerSec:           8e6,
		SCSIBytesPerSec:          18e6,
		CacheFraction:            0.6,
		DynReserveMB:             48,
		NFSPerOpCPU:              700 * time.Microsecond,
		NFSClientOverhead:        400 * time.Microsecond,
		DynThrashMemMB:           128,
		DynThrashFactor:          16,
		RouteLookupCPU:           5 * time.Microsecond,
		L4ForwardCPU:             2 * time.Microsecond,
		FrontendRelayBytesPerSec: 60e6,
	}
}

// cpuScale returns the CPU-time multiplier for a node (350 MHz reference).
func cpuScale(spec config.NodeSpec) float64 {
	if spec.CPUMHz <= 0 {
		return 1
	}
	return 350.0 / float64(spec.CPUMHz)
}

// seekFor returns the positioning latency for a node's disk kind.
func (hw HardwareParams) seekFor(spec config.NodeSpec) time.Duration {
	if spec.Disk == config.DiskSCSI {
		return hw.SCSISeek
	}
	return hw.IDESeek
}

// diskBWFor returns the sequential bandwidth for a node's disk kind.
func (hw HardwareParams) diskBWFor(spec config.NodeSpec) float64 {
	if spec.Disk == config.DiskSCSI {
		return hw.SCSIBytesPerSec
	}
	return hw.IDEBytesPerSec
}

// bytesTime converts a byte count at a bandwidth into a duration.
func bytesTime(bytes int64, bytesPerSec float64) time.Duration {
	if bytesPerSec <= 0 || bytes <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / bytesPerSec * float64(time.Second))
}

// scaleDur multiplies a duration by a float factor.
func scaleDur(d time.Duration, f float64) time.Duration {
	return time.Duration(float64(d) * f)
}
