package sim

import (
	"strings"
	"testing"
	"time"

	"webcluster/internal/workload"
)

func TestEngineStepPrimitives(t *testing.T) {
	var eng Engine
	if eng.HasPendingEvents() {
		t.Fatal("fresh engine claims pending events")
	}
	if _, ok := eng.PeekNextEventTime(); ok {
		t.Fatal("fresh engine peeked an event")
	}
	if eng.ProcessNextEvent() {
		t.Fatal("fresh engine processed an event")
	}

	var fired []time.Duration
	for _, at := range []time.Duration{30 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond} {
		at := at
		eng.ScheduleAt(at, func() { fired = append(fired, at) })
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	for i := 0; eng.HasPendingEvents(); i++ {
		at, ok := eng.PeekNextEventTime()
		if !ok || at != want[i] {
			t.Fatalf("peek %d = %v,%v, want %v", i, at, ok, want[i])
		}
		// Peek must not advance the clock or consume the event.
		if eng.Now() > want[i] {
			t.Fatalf("peek advanced the clock to %v", eng.Now())
		}
		if !eng.ProcessNextEvent() {
			t.Fatalf("process %d returned false with events pending", i)
		}
		if eng.Now() != want[i] {
			t.Fatalf("clock after process %d = %v, want %v", i, eng.Now(), want[i])
		}
	}
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3", len(fired))
	}
	if eng.Executed() != 3 {
		t.Fatalf("executed = %d, want 3", eng.Executed())
	}
}

// Run and the step primitives must drive the same heap identically — the
// scenario loop is just Run with a peek-ahead cutoff.
func TestEngineStepMatchesRun(t *testing.T) {
	build := func(eng *Engine, got *[]int) {
		for i := 0; i < 5; i++ {
			i := i
			eng.Schedule(time.Duration(5-i)*time.Millisecond, func() {
				*got = append(*got, i)
				if i == 4 { // nested event at the same instant
					eng.Schedule(0, func() { *got = append(*got, 100) })
				}
			})
		}
	}
	var ran, stepped []int
	var a, b Engine
	build(&a, &ran)
	a.Run(time.Second)
	build(&b, &stepped)
	for b.HasPendingEvents() {
		b.ProcessNextEvent()
	}
	if len(ran) != len(stepped) {
		t.Fatalf("run executed %d, step executed %d", len(ran), len(stepped))
	}
	for i := range ran {
		if ran[i] != stepped[i] {
			t.Fatalf("order diverges at %d: run %v, step %v", i, ran, stepped)
		}
	}
}

// Simultaneous events keep their scheduling order regardless of how they
// were scheduled (relative Schedule vs absolute ScheduleAt) — the
// property the scenario layer leans on to close intervals before
// same-instant completions.
func TestEngineFIFOTieBreakMixedScheduling(t *testing.T) {
	var eng Engine
	var got []int
	at := 50 * time.Millisecond
	for i := 0; i < 12; i++ {
		i := i
		if i%2 == 0 {
			eng.ScheduleAt(at, func() { got = append(got, i) })
		} else {
			eng.Schedule(at, func() { got = append(got, i) })
		}
	}
	eng.Run(time.Second)
	for i, v := range got {
		if v != i {
			t.Fatalf("mixed simultaneous events out of FIFO order: %v", got)
		}
	}
}

// The CSV format is a published interface (plotting tooling and the CI
// smoke parse it); pin the exact bytes.
func TestTimelineCSVGolden(t *testing.T) {
	tl := &Timeline{
		Name:            "golden",
		Interval:        2 * time.Minute,
		VirtualDuration: 4 * time.Minute,
		Points: []TimelinePoint{
			{Index: 0, Start: 0, End: 2 * time.Minute, Requests: 1200, Errors: 0,
				RPS: 10, P50: 1500 * time.Microsecond, P99: 20 * time.Millisecond,
				LoadCV: 0.25, Replicas: 2200, CacheHitRate: 0.9633},
			{Index: 1, Start: 2 * time.Minute, End: 4 * time.Minute, Requests: 1180, Errors: 3,
				RPS: 9.8333, P50: 2 * time.Millisecond, P99: 35*time.Millisecond + 400*time.Microsecond,
				LoadCV: 1.5, Replicas: 2301, CacheHitRate: 0.9997, DownNodes: 1,
				ClassP99: [NumSLOClasses]time.Duration{
					12 * time.Millisecond, 35 * time.Millisecond, 80 * time.Millisecond,
				},
				ClassShed:   [NumSLOClasses]int64{0, 2, 41},
				StaleServed: 17},
		},
	}
	var b strings.Builder
	if err := tl.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "interval,start_s,end_s,requests,errors,rps,p50_ms,p99_ms,load_cv,replicas,cache_hit,down_nodes," +
		"crit_p99_ms,inter_p99_ms,batch_p99_ms,crit_shed,inter_shed,batch_shed,stale_served\n" +
		"0,0.000,120.000,1200,0,10.000,1.500,20.000,0.2500,2200,0.9633,0,0.000,0.000,0.000,0,0,0,0\n" +
		"1,120.000,240.000,1180,3,9.833,2.000,35.400,1.5000,2301,0.9997,1,12.000,35.000,80.000,0,2,41,17\n"
	if b.String() != want {
		t.Fatalf("CSV drifted from golden format:\ngot:\n%swant:\n%s", b.String(), want)
	}
}

// The decision CSV is likewise a published interface; pin its bytes.
func TestDecisionsCSVGolden(t *testing.T) {
	tl := &Timeline{
		Decisions: []DecisionPoint{
			{Interval: 3, At: 8 * time.Minute, Kind: "replicate", Path: "/d/hot.html",
				Source: "n1", Target: "n4", Hits: 420, LoadCV: 0.6123,
				SourceLoad: 0.22, TargetLoad: 0.05,
				Reason: "replicate-hot-to-cold", Rejected: "n2(0.800);n3(0.750)", Applied: true},
			{Interval: 4, At: 10 * time.Minute, Kind: "offload", Path: "/d/warm.html",
				Target: "n2", Hits: 77, LoadCV: 0.31,
				TargetLoad: 0.91, Reason: "offload-hot"},
		},
	}
	var b strings.Builder
	if err := tl.WriteDecisionsCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "interval,at_s,kind,path,source,target,hits,load_cv,source_load,target_load,reason,rejected,applied\n" +
		"3,480.000,replicate,/d/hot.html,n1,n4,420,0.6123,0.2200,0.0500,replicate-hot-to-cold,n2(0.800);n3(0.750),1\n" +
		"4,600.000,offload,/d/warm.html,,n2,77,0.3100,0.0000,0.9100,offload-hot,,0\n"
	if b.String() != want {
		t.Fatalf("decision CSV drifted from golden format:\ngot:\n%swant:\n%s", b.String(), want)
	}
}

// An auto-balance replay that moves content must leave its working in
// the decision journal: every applied placement change traceable to a
// planner branch with its load inputs.
func TestScenarioRecordsDecisions(t *testing.T) {
	tl, err := RunScenario(smallSpec(), DefaultScenarioOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Decisions) == 0 {
		t.Fatal("auto-balance replay recorded no planner decisions")
	}
	applied := 0
	for _, d := range tl.Decisions {
		if d.Kind == "" || d.Reason == "" || d.Path == "" {
			t.Fatalf("decision missing fields: %+v", d)
		}
		if d.Applied {
			applied++
		}
	}
	if applied == 0 {
		t.Fatal("no decision was applied in a replay that auto-balances")
	}
}

func TestTimelineMeanRPS(t *testing.T) {
	tl := &Timeline{Points: []TimelinePoint{{RPS: 10}, {RPS: 20}, {RPS: 30}, {RPS: 40}}}
	if got := tl.MeanRPS(0, 2); got != 15 {
		t.Fatalf("MeanRPS(0,2) = %g, want 15", got)
	}
	if got := tl.MeanRPS(2, -1); got != 35 {
		t.Fatalf("MeanRPS(2,-1) = %g, want 35", got)
	}
	if got := tl.MeanRPS(3, 3); got != 0 {
		t.Fatalf("empty range = %g, want 0", got)
	}
}

// smallSpec is a quick scenario for structural checks: 4 minutes of
// modest Poisson traffic with every event kind represented.
func smallSpec() *workload.Spec {
	return &workload.Spec{
		Name:     "small",
		Seed:     3,
		Workload: "A",
		Objects:  300,
		Duration: workload.Duration(4 * time.Minute),
		Interval: workload.Duration(time.Minute),
		Classes: []workload.ClassSpec{
			{ID: "c", Arrival: workload.ArrivalSpec{Process: workload.ProcessPoisson, RatePerSec: 60}, ZipfS: 0.9},
		},
		Events: []workload.EventSpec{
			{At: workload.Duration(60 * time.Second), Kind: workload.EventFlashCrowd, HotObjects: 4, X: 2, Duration: workload.Duration(30 * time.Second)},
			{At: workload.Duration(140 * time.Second), Kind: workload.EventChurn, Fraction: 0.5},
			{At: workload.Duration(150 * time.Second), Kind: workload.EventNodeDown, Node: "n1-150"},
			{At: workload.Duration(200 * time.Second), Kind: workload.EventNodeUp, Node: "n1-150"},
		},
	}
}

func TestRunScenarioStructure(t *testing.T) {
	tl, err := RunScenario(smallSpec(), DefaultScenarioOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Points) != 4 {
		t.Fatalf("4m at 1m intervals should yield 4 points, got %d", len(tl.Points))
	}
	var sum int64
	for i, p := range tl.Points {
		if p.Index != i {
			t.Fatalf("point %d has index %d", i, p.Index)
		}
		if p.Start != time.Duration(i)*time.Minute || p.End != time.Duration(i+1)*time.Minute {
			t.Fatalf("point %d spans [%v, %v], want exact minute boundaries", i, p.Start, p.End)
		}
		if p.Requests == 0 {
			t.Fatalf("point %d served no requests", i)
		}
		sum += p.Requests
	}
	if sum != tl.TotalRequests {
		t.Fatalf("interval requests sum to %d, total says %d", sum, tl.TotalRequests)
	}
	// ~60 req/s for 4 minutes, doubled for 30s: roughly 15.6k arrivals.
	if tl.TotalRequests < 12000 || tl.TotalRequests > 20000 {
		t.Fatalf("total requests %d outside the expected envelope", tl.TotalRequests)
	}
	// The node-down window covers the close of interval 2 (at 180s);
	// interval 3 closes after the node is back.
	if tl.Points[2].DownNodes != 1 {
		t.Fatalf("interval 2 should see 1 down node, got %d", tl.Points[2].DownNodes)
	}
	if tl.Points[3].DownNodes != 0 {
		t.Fatalf("interval 3 should see the node restored, got %d", tl.Points[3].DownNodes)
	}
	// Under the partition scheme, single-copy content hosted on the down
	// node is unreachable for the window — errors are expected there and
	// ONLY there (intervals 2 and 3 overlap the 150s–200s outage).
	if tl.Points[0].Errors != 0 || tl.Points[1].Errors != 0 {
		t.Fatalf("errors before the outage: %+v", tl.Points[:2])
	}
	if tl.TotalErrors == 0 {
		t.Fatal("partition scheme with a node down should lose its single-copy content")
	}
	if tl.TotalErrors*20 > tl.TotalRequests {
		t.Fatalf("outage errors %d exceed 5%% of %d requests", tl.TotalErrors, tl.TotalRequests)
	}
}

func TestRunScenarioTimeScale(t *testing.T) {
	spec := smallSpec()
	spec.Events = nil
	spec.TimeScale = 4
	tl, err := RunScenario(spec, DefaultScenarioOptions())
	if err != nil {
		t.Fatal(err)
	}
	if tl.VirtualDuration != time.Minute {
		t.Fatalf("4m at 4x compression should replay 1m, got %v", tl.VirtualDuration)
	}
	if len(tl.Points) != 4 {
		t.Fatalf("interval count must survive compression, got %d points", len(tl.Points))
	}
	// Rates are NOT scaled: a quarter of the exposure, so roughly a
	// quarter of the requests.
	if tl.TotalRequests < 2500 || tl.TotalRequests > 5000 {
		t.Fatalf("compressed run served %d requests, want ~3.6k", tl.TotalRequests)
	}
}

func TestRunScenarioRejectsUnknownNode(t *testing.T) {
	spec := smallSpec()
	spec.Events = []workload.EventSpec{
		{At: workload.Duration(time.Second), Kind: workload.EventNodeDown, Node: "n99-000"},
	}
	if _, err := RunScenario(spec, DefaultScenarioOptions()); err == nil || !strings.Contains(err.Error(), "n99-000") {
		t.Fatalf("unknown node accepted: %v", err)
	}
}

func TestRunScenarioClosedLoop(t *testing.T) {
	spec := &workload.Spec{
		Name:     "closed",
		Seed:     9,
		Workload: "A",
		Objects:  200,
		Duration: workload.Duration(2 * time.Minute),
		Interval: workload.Duration(time.Minute),
		Classes: []workload.ClassSpec{
			{ID: "kiosk", Arrival: workload.ArrivalSpec{Process: workload.ProcessClosed, Clients: 10, Think: workload.Duration(100 * time.Millisecond)}},
		},
	}
	tl, err := RunScenario(spec, DefaultScenarioOptions())
	if err != nil {
		t.Fatal(err)
	}
	// 10 clients with 100ms think and ~ms service: just under 100 req/s.
	if tl.TotalRequests < 6000 || tl.TotalRequests > 12500 {
		t.Fatalf("closed loop served %d requests, want ~11k", tl.TotalRequests)
	}
}

func TestRunScenarioValidation(t *testing.T) {
	if _, err := RunScenario(nil, DefaultScenarioOptions()); err == nil {
		t.Fatal("nil spec accepted")
	}
	bad := smallSpec()
	bad.Classes = nil
	if _, err := RunScenario(bad, DefaultScenarioOptions()); err == nil {
		t.Fatal("invalid spec accepted")
	}
	collapse := smallSpec()
	collapse.TimeScale = 1e12
	if _, err := RunScenario(collapse, DefaultScenarioOptions()); err == nil {
		t.Fatal("interval collapsing to zero accepted")
	}
}

// Down nodes take no new requests but finish what they hold; with full
// replication every object has another home, so the outage must be
// completely absorbed.
func TestNodeDownDrains(t *testing.T) {
	spec := smallSpec()
	spec.Events = []workload.EventSpec{
		{At: workload.Duration(30 * time.Second), Kind: workload.EventNodeDown, Node: "n1-150"},
	}
	opts := DefaultScenarioOptions()
	opts.Scheme = SchemeFullReplication
	tl, err := RunScenario(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if tl.TotalErrors != 0 {
		t.Fatalf("%d errors with a replica-backed node down; routing should fall back", tl.TotalErrors)
	}
	for _, p := range tl.Points[1:] {
		if p.DownNodes != 1 {
			t.Fatalf("interval %d lost track of the down node: %d", p.Index, p.DownNodes)
		}
	}
}
