package sim

import (
	"fmt"
	"math"
	"strings"
	"time"

	"webcluster/internal/config"
	"webcluster/internal/content"
	"webcluster/internal/loadbal"
	"webcluster/internal/urltable"
	"webcluster/internal/workload"
)

// This file reproduces the §3.3 claim the paper states but does not plot:
// "the load balancing and auto-replication mechanism could further ensure
// an even load distribution and self-configure with respect to the change
// of content access pattern". The experiment starts from a deliberately
// skewed placement (all content crammed onto a few nodes), runs the real
// loadbal planner on real tracker output at fixed virtual intervals, and
// records per-interval throughput and load imbalance as replicas spread.

// BalancePoint is one auto-balancing interval's measurements.
type BalancePoint struct {
	// At is the virtual end time of the interval.
	At time.Duration
	// Throughput is requests/second completed during the interval.
	Throughput float64
	// LoadCV is the coefficient of variation of per-node load (stddev /
	// mean): 0 is perfectly even, higher is more imbalanced.
	LoadCV float64
	// Actions is how many placement changes the planner issued.
	Actions int
	// Replicas is the total number of content copies in the table.
	Replicas int
}

// BalanceData is the auto-replication experiment's series.
type BalanceData struct {
	Points []BalancePoint
}

// Render formats the series as a table.
func (d BalanceData) Render() string {
	var b strings.Builder
	b.WriteString("§3.3 auto-replication: skewed placement converging under load\n")
	fmt.Fprintf(&b, "%-10s%12s%10s%10s%10s\n", "t(virt)", "req/s", "load-CV", "actions", "copies")
	for _, p := range d.Points {
		fmt.Fprintf(&b, "%-10v%12.1f%10.2f%10d%10d\n",
			p.At, p.Throughput, p.LoadCV, p.Actions, p.Replicas)
	}
	return b.String()
}

// BalanceParams configures the auto-replication experiment.
type BalanceParams struct {
	Spec     config.ClusterSpec
	Hardware HardwareParams
	// Objects sizes the (static) site.
	Objects int
	// HotNodes is how many nodes initially hold everything.
	HotNodes int
	// Clients is the closed-loop population.
	Clients int
	// Interval is the balancing period in virtual time.
	Interval time.Duration
	// Rounds is how many intervals to run.
	Rounds int
	// Planner tunes the §3.3 planner.
	Planner loadbal.PlannerOptions
	Seed    int64
}

// DefaultBalanceParams returns the standard setup: the paper testbed with
// every object initially on 2 nodes of 9.
func DefaultBalanceParams() BalanceParams {
	return BalanceParams{
		Spec:     config.PaperTestbed(),
		Hardware: DefaultHardware(),
		Objects:  4000,
		HotNodes: 2,
		Clients:  64,
		Interval: 4 * time.Second,
		Rounds:   8,
		Planner: loadbal.PlannerOptions{
			Threshold:         0.25,
			MaxActionsPerNode: 8,
			MinHits:           20,
		},
		Seed: 1,
	}
}

// AutoBalanceExperiment runs the convergence experiment and returns the
// per-interval series. Placement changes take effect instantaneously (the
// copy cost of a ~10 KB object is negligible at the interval scale).
func AutoBalanceExperiment(p BalanceParams) (BalanceData, error) {
	if p.HotNodes < 1 || p.HotNodes > len(p.Spec.Nodes) {
		return BalanceData{}, fmt.Errorf("sim: invalid HotNodes %d", p.HotNodes)
	}
	site, err := workload.BuildSite(workload.KindA, p.Objects, p.Seed)
	if err != nil {
		return BalanceData{}, err
	}

	// Skewed initial placement: everything on the first HotNodes nodes,
	// round-robin single copy.
	table := urltable.New(urltable.Options{CacheEntries: 4096})
	for rank := 0; rank < site.Len(); rank++ {
		obj := site.ByRank(rank)
		node := p.Spec.Nodes[rank%p.HotNodes].ID
		if err := table.Insert(obj, node); err != nil {
			return BalanceData{}, err
		}
	}

	eng := &Engine{}
	cluster, err := BuildCustom(eng, p.Hardware, p.Spec, table, nil)
	if err != nil {
		return BalanceData{}, err
	}

	// Per-request load tracking with virtual processing times.
	tracker := loadbal.NewTracker(loadbal.PaperWeights())
	cluster.Frontend.SetObserver(func(node config.NodeID, class content.Class, procTime time.Duration) {
		tracker.Record(node, class, procTime)
	})

	// Closed-loop clients.
	var completed int64
	for i := 0; i < p.Clients; i++ {
		gen, err := workload.NewGenerator(site, workload.DefaultZipfS, p.Seed+int64(i)*7919)
		if err != nil {
			return BalanceData{}, err
		}
		var issue func()
		issue = func() {
			obj := gen.Next()
			cluster.Frontend.Route(obj, func(bool) {
				completed++
				issue()
			})
		}
		start := time.Duration(i) * time.Second / time.Duration(p.Clients)
		eng.Schedule(start, issue)
	}

	var data BalanceData
	var prevCompleted int64
	for round := 0; round < p.Rounds; round++ {
		end := time.Duration(round+1) * p.Interval
		eng.Run(end)

		loads := tracker.IntervalLoads(p.Spec.Nodes)
		actions := loadbal.Plan(loads, table, p.Planner)
		applied := 0
		for _, a := range actions {
			switch a.Kind {
			case loadbal.ActionReplicate:
				if err := table.AddLocation(a.Path, a.Target); err == nil {
					if n, ok := cluster.NodeByID(a.Target); ok {
						n.Place(a.Path)
					}
					applied++
				}
			case loadbal.ActionOffload:
				if err := table.RemoveLocation(a.Path, a.Target); err == nil {
					if n, ok := cluster.NodeByID(a.Target); ok {
						n.Unplace(a.Path)
					}
					applied++
				}
			}
		}
		table.ResetHits()

		replicas := 0
		table.Walk(func(r urltable.Record) { replicas += len(r.Locations) })
		intervalReqs := completed - prevCompleted
		prevCompleted = completed
		data.Points = append(data.Points, BalancePoint{
			At:         end,
			Throughput: float64(intervalReqs) / p.Interval.Seconds(),
			LoadCV:     coefficientOfVariation(loads),
			Actions:    applied,
			Replicas:   replicas,
		})
	}
	return data, nil
}

// coefficientOfVariation computes stddev/mean over the load map.
func coefficientOfVariation(loads map[config.NodeID]float64) float64 {
	if len(loads) == 0 {
		return 0
	}
	var sum float64
	for _, l := range loads {
		sum += l
	}
	mean := sum / float64(len(loads))
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, l := range loads {
		d := l - mean
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(loads))) / mean
}
