package sim

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"time"
)

// TimelinePoint is one aggregation interval of a scenario replay.
type TimelinePoint struct {
	// Index is the interval's ordinal (0-based).
	Index int
	// Start and End bound the interval in (post-TimeScale) virtual time.
	Start, End time.Duration
	// Requests and Errors count completions inside the interval.
	Requests, Errors int64
	// RPS is Requests divided by the interval width.
	RPS float64
	// P50 and P99 are response-time quantiles over the interval.
	P50, P99 time.Duration
	// LoadCV is the coefficient of variation of per-node §3.3 load
	// (down nodes excluded): 0 is perfectly even.
	LoadCV float64
	// Replicas is the total content copy count at interval close.
	Replicas int
	// CacheHitRate is the interval's page-cache hit rate across nodes.
	CacheHitRate float64
	// DownNodes is how many nodes were out of service at interval close.
	DownNodes int
	// ClassP99 holds per-SLO-class p99 latency over served requests
	// (indexed by SLOClass: critical, interactive, batch). Zero for a
	// class with no traffic in the interval.
	ClassP99 [NumSLOClasses]time.Duration
	// ClassShed counts requests refused by admission control per class.
	ClassShed [NumSLOClasses]int64
	// StaleServed counts interactive requests degraded to front-end
	// stale answers during the interval.
	StaleServed int64
}

// DecisionPoint is one planner decision taken during a replay, with the
// planner inputs that produced it — the simulated counterpart of the
// live cluster's decision journal.
type DecisionPoint struct {
	// Interval is the index of the interval whose close triggered the
	// planning round.
	Interval int
	// At is the virtual time of the round.
	At time.Duration
	// Kind is "replicate" or "offload".
	Kind string
	// Path is the document moved.
	Path string
	// Source and Target are the chosen nodes ("" where not applicable).
	Source, Target string
	// Hits is the document's interval demand reading.
	Hits int64
	// LoadCV is the cluster imbalance the planner ran against.
	LoadCV float64
	// SourceLoad and TargetLoad are the chosen nodes' load readings.
	SourceLoad, TargetLoad float64
	// Reason names the planner branch that produced the decision.
	Reason string
	// Rejected joins the alternatives passed over with ";".
	Rejected string
	// Applied reports whether the table mutation succeeded.
	Applied bool
}

// Timeline is the full per-interval series of one scenario replay.
type Timeline struct {
	// Name echoes the spec's scenario name.
	Name string
	// Interval is the aggregation granularity (post-TimeScale).
	Interval time.Duration
	// TimeScale is the compression the spec requested.
	TimeScale float64
	// VirtualDuration is the replayed virtual span (post-TimeScale).
	VirtualDuration time.Duration
	// Points are the intervals in order.
	Points []TimelinePoint
	// Decisions are the planner decisions in order (AutoBalance replays
	// only; empty otherwise). They are emitted as a separate CSV —
	// WriteDecisionsCSV — so the interval timeline format stays fixed.
	Decisions []DecisionPoint
	// TotalRequests and TotalErrors sum over all intervals.
	TotalRequests, TotalErrors int64
	// EventsExecuted is the engine's event count, a proxy for how much
	// work the replay cost.
	EventsExecuted uint64
}

// TimelineCSVHeader is the emitted column set. Each row is one interval:
// times in seconds of virtual time, latencies in milliseconds.
const TimelineCSVHeader = "interval,start_s,end_s,requests,errors,rps,p50_ms,p99_ms,load_cv,replicas,cache_hit,down_nodes," +
	"crit_p99_ms,inter_p99_ms,batch_p99_ms,crit_shed,inter_shed,batch_shed,stale_served"

// WriteCSV emits the timeline in the fixed format the benchfigs tooling
// plots. Output is byte-deterministic for a deterministic timeline.
func (t *Timeline) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, TimelineCSVHeader)
	for _, p := range t.Points {
		fmt.Fprintf(bw, "%d,%.3f,%.3f,%d,%d,%.3f,%.3f,%.3f,%.4f,%d,%.4f,%d,%.3f,%.3f,%.3f,%d,%d,%d,%d\n",
			p.Index,
			p.Start.Seconds(), p.End.Seconds(),
			p.Requests, p.Errors,
			p.RPS,
			float64(p.P50)/float64(time.Millisecond),
			float64(p.P99)/float64(time.Millisecond),
			p.LoadCV,
			p.Replicas,
			p.CacheHitRate,
			p.DownNodes,
			float64(p.ClassP99[SLOCritical])/float64(time.Millisecond),
			float64(p.ClassP99[SLOInteractive])/float64(time.Millisecond),
			float64(p.ClassP99[SLOBatch])/float64(time.Millisecond),
			p.ClassShed[SLOCritical],
			p.ClassShed[SLOInteractive],
			p.ClassShed[SLOBatch],
			p.StaleServed,
		)
	}
	return bw.Flush()
}

// DecisionsCSVHeader is the column set of the planner-decision CSV. One
// row per decision; times in seconds of virtual time.
const DecisionsCSVHeader = "interval,at_s,kind,path,source,target,hits,load_cv,source_load,target_load,reason,rejected,applied"

// WriteDecisionsCSV emits the planner-decision journal of the replay.
// Output is byte-deterministic for a deterministic timeline.
func (t *Timeline) WriteDecisionsCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, DecisionsCSVHeader)
	for _, d := range t.Decisions {
		applied := 0
		if d.Applied {
			applied = 1
		}
		fmt.Fprintf(bw, "%d,%.3f,%s,%s,%s,%s,%d,%.4f,%.4f,%.4f,%s,%s,%d\n",
			d.Interval,
			d.At.Seconds(),
			d.Kind,
			d.Path,
			d.Source, d.Target,
			d.Hits,
			d.LoadCV,
			d.SourceLoad, d.TargetLoad,
			d.Reason,
			d.Rejected,
			applied,
		)
	}
	return bw.Flush()
}

// Throughput returns overall requests/second across the whole replay.
func (t *Timeline) Throughput() float64 {
	if t.VirtualDuration <= 0 {
		return 0
	}
	return float64(t.TotalRequests) / t.VirtualDuration.Seconds()
}

// MeanRPS averages the per-interval throughput of points [from, to)
// (negative to means len(Points)). Intervals outside the range are
// ignored; an empty range returns 0.
func (t *Timeline) MeanRPS(from, to int) float64 {
	if to < 0 || to > len(t.Points) {
		to = len(t.Points)
	}
	if from < 0 {
		from = 0
	}
	if from >= to {
		return 0
	}
	var sum float64
	for _, p := range t.Points[from:to] {
		sum += p.RPS
	}
	return sum / float64(to-from)
}

// Summary formats the headline numbers for CLI output.
func (t *Timeline) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %q: %v virtual", t.Name, t.VirtualDuration)
	if t.TimeScale != 1 {
		fmt.Fprintf(&b, " (time scale %gx)", t.TimeScale)
	}
	fmt.Fprintf(&b, ", %d intervals of %v\n", len(t.Points), t.Interval)
	fmt.Fprintf(&b, "  %d requests (%.1f req/s), %d errors, %d engine events\n",
		t.TotalRequests, t.Throughput(), t.TotalErrors, t.EventsExecuted)
	if n := len(t.Points); n > 0 {
		var maxP99 time.Duration
		for _, p := range t.Points {
			if p.P99 > maxP99 {
				maxP99 = p.P99
			}
		}
		fmt.Fprintf(&b, "  first interval %.1f req/s, last %.1f req/s, worst p99 %v\n",
			t.Points[0].RPS, t.Points[n-1].RPS, maxP99.Round(100*time.Microsecond))
	}
	return b.String()
}
