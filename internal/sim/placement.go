package sim

import (
	"fmt"
	"sort"

	"webcluster/internal/config"
	"webcluster/internal/content"
	"webcluster/internal/loadbal"
	"webcluster/internal/urltable"
)

// Scheme is a content-placement scheme under evaluation (§5.3's three
// configurations).
type Scheme int

// Schemes.
const (
	// SchemeFullReplication: every node holds every object
	// (configuration 1).
	SchemeFullReplication Scheme = iota + 1
	// SchemeNFS: no node holds anything; all content on the shared
	// file server (configuration 2).
	SchemeNFS
	// SchemePartition: the paper's content-aware partitioning
	// (configuration 3): dynamic content on fast-CPU nodes, video on
	// large-disk nodes, static content spread by capacity, hot static
	// objects replicated.
	SchemePartition
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case SchemeFullReplication:
		return "full-replication"
	case SchemeNFS:
		return "nfs-shared"
	case SchemePartition:
		return "partition"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// PlacementOptions tunes SchemePartition.
type PlacementOptions struct {
	// HotReplicaFraction of the most popular static objects get
	// HotReplicas copies for load balancing.
	HotReplicaFraction float64
	// HotReplicas is the copy count for hot objects (≥1).
	HotReplicas int
	// SegregateStatic keeps static content off the dynamic-content
	// nodes entirely (full segregation); false mixes hot static
	// replicas onto fast nodes too. The Figure 4 ablation flips this.
	SegregateStatic bool
	// DynReplicas is the copy count for each dynamic object across the
	// fast-CPU group (scripts are tiny; replicating them buys the
	// distributor load-spreading freedom). ≥1.
	DynReplicas int
}

// DefaultPlacementOptions mirrors the paper's description: rough
// partition by type, hot content replicated, static kept clear of the
// dynamic servers.
func DefaultPlacementOptions() PlacementOptions {
	return PlacementOptions{
		HotReplicaFraction: 0.05,
		HotReplicas:        3,
		SegregateStatic:    true,
		DynReplicas:        4,
	}
}

// BuildDeployment constructs the simulated cluster for a scheme: nodes
// with placement applied, the NFS server when the scheme needs one, the
// URL table for the content-aware front end, and the front end itself
// (content-aware for SchemePartition, L4-WLC otherwise, matching §5.3).
func BuildDeployment(eng *Engine, hw HardwareParams, spec config.ClusterSpec, site *content.Site, scheme Scheme, opts PlacementOptions) (*Cluster, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	nodes := make([]*Node, 0, len(spec.Nodes))
	for _, ns := range spec.Nodes {
		nodes = append(nodes, NewNode(eng, hw, ns))
	}
	cluster := &Cluster{Engine: eng, Nodes: nodes}

	dynamicSite := siteHasDynamic(site)

	switch scheme {
	case SchemeFullReplication:
		for _, n := range nodes {
			n.SetAllContent()
			if dynamicSite {
				n.SetHostsDynamic()
			}
		}
		fe, err := NewFrontend(eng, hw, FrontL4WLC, nodes, nil, nil)
		if err != nil {
			return nil, err
		}
		cluster.Frontend = fe

	case SchemeNFS:
		// The shared file server: a 350 MHz/128 MB SCSI machine, the
		// class of box a site would dedicate to NFS duty.
		nfsSpec := config.NodeSpec{
			ID:       "nfs-server",
			CPUMHz:   350,
			MemoryMB: 128,
			DiskGB:   16,
			Disk:     config.DiskSCSI,
			Platform: config.LinuxApache,
		}
		nfs := NewNFSNode(eng, hw, nfsSpec)
		for _, n := range nodes {
			n.UseNFS(nfs)
			if dynamicSite {
				// Dynamic content executes on the web nodes even
				// when its files live on the shared server.
				n.SetHostsDynamic()
			}
		}
		cluster.NFS = nfs
		fe, err := NewFrontend(eng, hw, FrontL4WLC, nodes, nil, nil)
		if err != nil {
			return nil, err
		}
		cluster.Frontend = fe

	case SchemePartition:
		table, err := PartitionSite(site, spec, opts)
		if err != nil {
			return nil, err
		}
		table.Walk(func(r urltable.Record) {
			for _, id := range r.Locations {
				if n, ok := cluster.NodeByID(id); ok {
					n.Place(r.Path)
				}
			}
		})
		applyDynReserve(cluster, table)
		cluster.Table = table
		fe, err := NewFrontend(eng, hw, FrontContentAware, nodes, table, nil)
		if err != nil {
			return nil, err
		}
		cluster.Frontend = fe

	default:
		return nil, fmt.Errorf("sim: unknown scheme %v", scheme)
	}
	return cluster, nil
}

// BuildCustom assembles a partition-scheme cluster from a pre-built URL
// table and a custom replica picker (the picker ablation's entry point).
func BuildCustom(eng *Engine, hw HardwareParams, spec config.ClusterSpec, table *urltable.Table, picker loadbal.Picker) (*Cluster, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	nodes := make([]*Node, 0, len(spec.Nodes))
	for _, ns := range spec.Nodes {
		nodes = append(nodes, NewNode(eng, hw, ns))
	}
	cluster := &Cluster{Engine: eng, Nodes: nodes, Table: table}
	table.Walk(func(r urltable.Record) {
		for _, id := range r.Locations {
			if n, ok := cluster.NodeByID(id); ok {
				n.Place(r.Path)
			}
		}
	})
	applyDynReserve(cluster, table)
	fe, err := NewFrontend(eng, hw, FrontContentAware, nodes, table, picker)
	if err != nil {
		return nil, err
	}
	cluster.Frontend = fe
	return cluster, nil
}

// siteHasDynamic reports whether site contains CGI/ASP objects.
func siteHasDynamic(site *content.Site) bool {
	for rank := 0; rank < site.Len(); rank++ {
		if site.ByRank(rank).Class.Dynamic() {
			return true
		}
	}
	return false
}

// applyDynReserve shrinks the page cache of every node that hosts dynamic
// content according to table placement.
func applyDynReserve(cluster *Cluster, table *urltable.Table) {
	hostsDyn := make(map[config.NodeID]bool)
	table.Walk(func(r urltable.Record) {
		if !r.Dynamic() {
			return
		}
		for _, id := range r.Locations {
			hostsDyn[id] = true
		}
	})
	for _, n := range cluster.Nodes {
		if hostsDyn[n.Spec.ID] {
			n.SetHostsDynamic()
		}
	}
}

// PartitionSite computes the §5.3 configuration-3 placement for site over
// spec's nodes and returns the populated URL table:
//
//   - CGI and ASP objects go to the fastest-CPU nodes (ASP preferring
//     NT/IIS nodes among them, CGI preferring Linux/Apache).
//   - Video files go to the nodes with the largest disks (SCSI preferred).
//   - Static objects are spread across the static node group
//     (all nodes, or only non-dynamic nodes under SegregateStatic),
//     weighted by memory so cache capacity is used proportionally.
//   - The hottest static objects are replicated HotReplicas ways within
//     the static group.
func PartitionSite(site *content.Site, spec config.ClusterSpec, opts PlacementOptions) (*urltable.Table, error) {
	if opts.HotReplicas < 1 {
		opts.HotReplicas = 1
	}
	nodes := spec.Nodes
	if len(nodes) == 0 {
		return nil, fmt.Errorf("sim: no nodes to place on")
	}

	// Does the site contain dynamic content at all? Segregation only
	// exists to keep CPU-bound requests away from static service; with a
	// purely static site (Workload A) every node serves statics.
	hasDynamic := false
	for rank := 0; rank < site.Len(); rank++ {
		if site.ByRank(rank).Class.Dynamic() {
			hasDynamic = true
			break
		}
	}

	// Node groups.
	maxMHz := 0
	for _, n := range nodes {
		if n.CPUMHz > maxMHz {
			maxMHz = n.CPUMHz
		}
	}
	var fastNodes, staticNodes, videoNodes []config.NodeSpec
	for _, n := range nodes {
		if n.CPUMHz == maxMHz {
			fastNodes = append(fastNodes, n)
		} else {
			staticNodes = append(staticNodes, n)
		}
	}
	if len(staticNodes) == 0 || !opts.SegregateStatic || !hasDynamic {
		// Single-speed clusters, non-segregated placement, or a
		// dynamic-free site: spread static content over everything.
		staticNodes = append([]config.NodeSpec(nil), nodes...)
	}
	// Video: largest disks first, SCSI preferred, at most 4 holders.
	sorted := append([]config.NodeSpec(nil), nodes...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].DiskGB != sorted[j].DiskGB {
			return sorted[i].DiskGB > sorted[j].DiskGB
		}
		return sorted[i].Disk == config.DiskSCSI && sorted[j].Disk != config.DiskSCSI
	})
	nVideo := 4
	if nVideo > len(sorted) {
		nVideo = len(sorted)
	}
	videoNodes = sorted[:nVideo]

	table := urltable.New(urltable.Options{CacheEntries: 4096})

	// Static spreading: weighted round-robin by memory.
	staticWeight := make([]float64, len(staticNodes))
	var totalMem float64
	for i, n := range staticNodes {
		staticWeight[i] = float64(n.MemoryMB)
		totalMem += staticWeight[i]
	}
	staticCredit := make([]float64, len(staticNodes))

	// Dynamic spreading: round-robin with platform affinity.
	dynIdx := 0

	hotCut := int(float64(site.Len()) * opts.HotReplicaFraction)
	videoIdx := 0

	for rank := 0; rank < site.Len(); rank++ {
		obj := site.ByRank(rank)
		var locs []config.NodeID
		switch obj.Class {
		case content.ClassCGI, content.ClassASP:
			copies := opts.DynReplicas
			if rank < hotCut {
				// Hot scripts are tiny: replicate them across the
				// whole fast group for maximum dispatch freedom.
				copies = len(fastNodes)
			}
			locs = pickDynamic(fastNodes, copies, &dynIdx)
		case content.ClassVideo:
			locs = []config.NodeID{videoNodes[videoIdx%len(videoNodes)].ID}
			videoIdx++
		default:
			// Pick the static node with the most spare credit,
			// replicating hot objects.
			copies := 1
			if rank < hotCut {
				copies = opts.HotReplicas
				if copies > len(staticNodes) {
					copies = len(staticNodes)
				}
			}
			locs = pickStatic(staticNodes, staticWeight, staticCredit, obj.Size, copies)
		}
		if err := table.Insert(obj, locs...); err != nil {
			return nil, fmt.Errorf("sim: placing %s: %w", obj.Path, err)
		}
	}
	return table, nil
}

// pickDynamic places a dynamic object on `copies` distinct fast nodes,
// round-robin over the whole fast group. The paper's testbed ties ASP to
// NT/IIS and CGI to Apache, but pinning a class to the lone fast node of
// one platform would idle the other fast CPUs — the management layer's
// whole point is masking that heterogeneity — so placement treats the
// fast group as uniform execution capacity.
func pickDynamic(fast []config.NodeSpec, copies int, idx *int) []config.NodeID {
	if copies < 1 {
		copies = 1
	}
	if copies > len(fast) {
		copies = len(fast)
	}
	locs := make([]config.NodeID, 0, copies)
	for i := 0; i < copies; i++ {
		locs = append(locs, fast[(*idx+i)%len(fast)].ID)
	}
	*idx++
	return locs
}

// pickStatic places one static object on `copies` distinct nodes using
// memory-weighted deficit round-robin: each node accrues credit
// proportional to its weight and the emptiest-credit nodes take the
// object.
func pickStatic(nodes []config.NodeSpec, weight, credit []float64, size int64, copies int) []config.NodeID {
	type cand struct {
		idx  int
		need float64
	}
	cands := make([]cand, len(nodes))
	for i := range nodes {
		cands[i] = cand{idx: i, need: credit[i] / weight[i]}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].need != cands[b].need {
			return cands[a].need < cands[b].need
		}
		return cands[a].idx < cands[b].idx
	})
	if copies > len(cands) {
		copies = len(cands)
	}
	locs := make([]config.NodeID, 0, copies)
	for i := 0; i < copies; i++ {
		c := cands[i]
		credit[c.idx] += float64(size)
		locs = append(locs, nodes[c.idx].ID)
	}
	return locs
}
