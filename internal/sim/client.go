package sim

import (
	"fmt"
	"time"

	"webcluster/internal/content"
	"webcluster/internal/workload"
)

// RunParams configures one simulated WebBench run.
type RunParams struct {
	// Clients is the closed-loop client count (WebBench concurrency).
	Clients int
	// Warmup is virtual time excluded from measurement (cache fill).
	Warmup time.Duration
	// Measure is the virtual measurement window.
	Measure time.Duration
	// ThinkTime pauses each client between requests.
	ThinkTime time.Duration
	// ZipfS is the popularity skew (0 = workload.DefaultZipfS).
	ZipfS float64
	// Seed drives per-client request streams.
	Seed int64
}

// DefaultRunParams returns the standard measurement setup.
func DefaultRunParams(clients int) RunParams {
	return RunParams{
		Clients:   clients,
		Warmup:    10 * time.Second,
		Measure:   30 * time.Second,
		ThinkTime: 0,
		Seed:      1,
	}
}

// ClassResult is one content class's measured slice.
type ClassResult struct {
	Requests int64
	Errors   int64
	// TotalLatency is summed response time for mean computation.
	TotalLatency time.Duration
}

// MeanLatency returns the class's mean response time.
func (c ClassResult) MeanLatency() time.Duration {
	if c.Requests == 0 {
		return 0
	}
	return c.TotalLatency / time.Duration(c.Requests)
}

// Result is the outcome of one simulated run.
type Result struct {
	Scheme   Scheme
	Clients  int
	Measured time.Duration
	Requests int64
	Errors   int64
	PerClass map[content.Class]ClassResult
	// CacheHitRate is the measurement-window page-cache hit rate
	// averaged over nodes (the Figure 2 mechanism).
	CacheHitRate float64
	// NFSOps counts shared-file-server operations (configuration 2).
	NFSOps uint64
}

// Throughput returns overall requests/second — the figures' y-axis.
func (r Result) Throughput() float64 {
	if r.Measured <= 0 {
		return 0
	}
	return float64(r.Requests) / r.Measured.Seconds()
}

// ClassThroughput returns one class's requests/second.
func (r Result) ClassThroughput(c content.Class) float64 {
	if r.Measured <= 0 {
		return 0
	}
	return float64(r.PerClass[c].Requests) / r.Measured.Seconds()
}

// StaticThroughput sums the static classes (HTML + images), the "static"
// series of Figure 4.
func (r Result) StaticThroughput() float64 {
	return r.ClassThroughput(content.ClassHTML) + r.ClassThroughput(content.ClassImage)
}

// String formats the headline number.
func (r Result) String() string {
	return fmt.Sprintf("%s clients=%d: %.1f req/s (errors %d, cache hit %.1f%%)",
		r.Scheme, r.Clients, r.Throughput(), r.Errors, 100*r.CacheHitRate)
}

// Run drives cluster with closed-loop clients over site and returns the
// measured result. The cluster must be freshly built; Run owns its engine.
func Run(cluster *Cluster, site *content.Site, scheme Scheme, p RunParams) (Result, error) {
	if p.Clients <= 0 {
		return Result{}, fmt.Errorf("sim: non-positive client count")
	}
	zipfS := p.ZipfS
	if zipfS == 0 {
		zipfS = workload.DefaultZipfS
	}
	eng := cluster.Engine
	warmupEnd := eng.Now() + p.Warmup
	end := warmupEnd + p.Measure

	res := Result{
		Scheme:   scheme,
		Clients:  p.Clients,
		Measured: p.Measure,
		PerClass: make(map[content.Class]ClassResult, 5),
	}

	// One generator per client, offset seeds (as WebBench's independent
	// client processes).
	for i := 0; i < p.Clients; i++ {
		gen, err := workload.NewGenerator(site, zipfS, p.Seed+int64(i)*7919)
		if err != nil {
			return Result{}, err
		}
		client := &simClient{
			eng:       eng,
			cluster:   cluster,
			gen:       gen,
			think:     p.ThinkTime,
			warmupEnd: warmupEnd,
			end:       end,
			res:       &res,
		}
		// Stagger client starts across the first virtual second to
		// avoid a synchronized thundering herd at t=0.
		start := time.Duration(i) * time.Second / time.Duration(p.Clients)
		eng.Schedule(start, client.issue)
	}

	// Reset cache counters at warmup end so hit rates reflect steady
	// state only.
	eng.ScheduleAt(warmupEnd, func() {
		for _, n := range cluster.Nodes {
			n.pageCache.ResetStats()
		}
		if cluster.NFS != nil {
			cluster.NFS.pageCache.ResetStats()
		}
	})

	eng.Run(end)

	// Aggregate steady-state cache hit rate weighted by lookups.
	var hits, misses int64
	for _, n := range cluster.Nodes {
		st := n.CacheStats()
		hits += st.Hits
		misses += st.Misses
	}
	if cluster.NFS != nil {
		st := cluster.NFS.CacheStats()
		hits += st.Hits
		misses += st.Misses
		res.NFSOps = cluster.NFS.Ops()
	}
	if hits+misses > 0 {
		res.CacheHitRate = float64(hits) / float64(hits+misses)
	}
	return res, nil
}

// simClient is one closed-loop client inside the simulation.
type simClient struct {
	eng       *Engine
	cluster   *Cluster
	gen       *workload.Generator
	think     time.Duration
	warmupEnd time.Duration
	end       time.Duration
	res       *Result
}

// issue sends the next request.
func (c *simClient) issue() {
	if c.eng.Now() >= c.end {
		return
	}
	obj := c.gen.Next()
	started := c.eng.Now()
	c.cluster.Frontend.Route(obj, func(ok bool) {
		finished := c.eng.Now()
		if started >= c.warmupEnd && finished <= c.end {
			cr := c.res.PerClass[obj.Class]
			cr.Requests++
			cr.TotalLatency += finished - started
			if !ok {
				cr.Errors++
				c.res.Errors++
			}
			c.res.PerClass[obj.Class] = cr
			c.res.Requests++
		}
		if c.think > 0 {
			c.eng.Schedule(c.think, c.issue)
			return
		}
		c.issue()
	})
}
