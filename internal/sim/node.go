package sim

import (
	"webcluster/internal/cache"
	"webcluster/internal/config"
	"webcluster/internal/content"
)

// objSize is the cache.Sizer the simulated page cache stores: only the
// byte size matters, never the bytes.
type objSize int64

// SizeBytes implements cache.Sizer.
func (s objSize) SizeBytes() int64 { return int64(s) }

var _ cache.Sizer = objSize(0)

// Node is one simulated back-end server: FIFO CPU, disk and NIC queues,
// an LRU page cache sized from the node's memory, and a placement set
// saying which objects are local.
type Node struct {
	Spec config.NodeSpec
	eng  *Engine
	hw   HardwareParams

	CPU  *Resource
	Disk *Resource
	NIC  *Resource

	pageCache *cache.LRU

	// placed is the local content set; nil+allContent models full
	// replication without materializing the set.
	placed     map[string]bool
	allContent bool

	// nfs, when set, serves objects that are not local (configuration 2).
	nfs *NFSNode

	// Active is the in-flight request count the pickers read.
	Active int64

	// down marks the node out of service (scheduled maintenance or a
	// failure event): the front end stops routing to it while in-flight
	// requests drain normally.
	down bool

	served    uint64
	notFound  uint64
	classReqs map[content.Class]uint64
}

// NewNode builds a simulated node on eng.
func NewNode(eng *Engine, hw HardwareParams, spec config.NodeSpec) *Node {
	cacheBytes := int64(float64(spec.MemoryMB) * 1024 * 1024 * hw.CacheFraction)
	return &Node{
		Spec:      spec,
		eng:       eng,
		hw:        hw,
		CPU:       NewResource(eng),
		Disk:      NewResource(eng),
		NIC:       NewResource(eng),
		pageCache: cache.NewLRU(cacheBytes),
		placed:    make(map[string]bool),
		classReqs: make(map[content.Class]uint64),
	}
}

// SetAllContent marks the node as holding the entire site (full
// replication).
func (n *Node) SetAllContent() { n.allContent = true }

// SetHostsDynamic reserves dynamic-execution memory (interpreters,
// per-request heaps) on the node, shrinking its page cache — the memory
// side of the interference content segregation removes. Call during
// deployment, before traffic runs.
func (n *Node) SetHostsDynamic() {
	memMB := n.Spec.MemoryMB - n.hw.DynReserveMB
	if memMB < 8 {
		memMB = 8
	}
	n.pageCache = cache.NewLRU(int64(float64(memMB) * 1024 * 1024 * n.hw.CacheFraction))
}

// Place marks an object as locally stored.
func (n *Node) Place(path string) { n.placed[path] = true }

// Unplace removes an object from local storage and evicts any cached copy.
func (n *Node) Unplace(path string) {
	delete(n.placed, path)
	n.pageCache.Remove(path)
}

// Has reports whether the node stores path locally.
func (n *Node) Has(path string) bool { return n.allContent || n.placed[path] }

// UseNFS wires the shared file server for non-local content.
func (n *Node) UseNFS(nfs *NFSNode) { n.nfs = nfs }

// SetDown marks the node in or out of service. A down node receives no
// new requests; whatever is in flight drains normally (maintenance
// semantics, not a crash).
func (n *Node) SetDown(down bool) { n.down = down }

// Down reports whether the node is out of service.
func (n *Node) Down() bool { return n.down }

// CacheStats exposes the page-cache counters.
func (n *Node) CacheStats() cache.Stats { return n.pageCache.Stats() }

// Served returns completed requests.
func (n *Node) Served() uint64 { return n.served }

// NotFound returns requests for content the node did not hold and could
// not fetch (misrouting indicator).
func (n *Node) NotFound() uint64 { return n.notFound }

// Serve runs one request through the node's resource pipeline and calls
// done(ok) at completion.
func (n *Node) Serve(obj content.Object, done func(ok bool)) {
	n.Active++
	scale := cpuScale(n.Spec)
	finish := func(ok bool, respBytes int64) {
		// Response transmission through the node's NIC, chunked so a
		// video transfer does not monopolize the link.
		chunk := bytesTime(64<<10, n.hw.NICBytesPerSec)
		n.NIC.EnqueueChunked(bytesTime(respBytes, n.hw.NICBytesPerSec), chunk, func() {
			n.Active--
			n.served++
			n.classReqs[obj.Class]++
			if !ok {
				n.notFound++
			}
			done(ok)
		})
	}

	// Protocol parse on the CPU.
	n.CPU.Enqueue(scaleDur(n.hw.ParseCPU, scale), func() {
		if obj.Class.Dynamic() {
			n.serveDynamic(obj, scale, finish)
			return
		}
		n.serveStatic(obj, scale, finish)
	})
}

// serveDynamic executes CGI/ASP work on the CPU.
func (n *Node) serveDynamic(obj content.Object, scale float64, finish func(bool, int64)) {
	if !n.Has(obj.Path) && n.nfs == nil {
		finish(false, 256)
		return
	}
	exec := scaleDur(n.hw.ExecUnitCPU, obj.CPUCost*scale)
	if n.hw.DynThrashFactor > 1 && n.Spec.MemoryMB < n.hw.DynThrashMemMB {
		exec = scaleDur(exec, n.hw.DynThrashFactor)
	}
	n.CPU.Enqueue(exec, func() {
		finish(true, obj.Size)
	})
}

// serveStatic reads the object from page cache, local disk, or NFS.
func (n *Node) serveStatic(obj content.Object, scale float64, finish func(bool, int64)) {
	copyCost := bytesTime(obj.Size, n.hw.MemCopyBytesPerSec)
	if n.Has(obj.Path) {
		if _, hit := n.pageCache.Get(obj.Path); hit {
			n.CPU.Enqueue(copyCost, func() { finish(true, obj.Size) })
			return
		}
		seek := n.hw.seekFor(n.Spec)
		read := bytesTime(obj.Size, n.hw.diskBWFor(n.Spec))
		// Chunk long reads: the disk elevator interleaves other
		// requests between a video file's extents.
		chunk := seek + bytesTime(256<<10, n.hw.diskBWFor(n.Spec))
		n.Disk.EnqueueChunked(seek+read, chunk, func() {
			n.pageCache.Put(obj.Path, objSize(obj.Size))
			n.CPU.Enqueue(copyCost, func() { finish(true, obj.Size) })
		})
		return
	}
	if n.nfs == nil {
		finish(false, 256)
		return
	}
	// Remote file I/O: marshalling overhead on this node's CPU, then the
	// shared server's pipeline, then a local copy to the socket. Per the
	// scheme's semantics the web node does not cache NFS-served content
	// (no local storage is allocated to it).
	n.CPU.Enqueue(scaleDur(n.hw.NFSClientOverhead, scale), func() {
		n.nfs.Fetch(obj, func() {
			n.CPU.Enqueue(copyCost, func() { finish(true, obj.Size) })
		})
	})
}

// NFSNode is the shared file server of configuration 2: one machine whose
// CPU (RPC processing), disk and NIC serve every web node's misses.
type NFSNode struct {
	Spec config.NodeSpec
	eng  *Engine
	hw   HardwareParams

	CPU  *Resource
	Disk *Resource
	NIC  *Resource

	pageCache *cache.LRU
	ops       uint64
}

// NewNFSNode builds the shared file server.
func NewNFSNode(eng *Engine, hw HardwareParams, spec config.NodeSpec) *NFSNode {
	cacheBytes := int64(float64(spec.MemoryMB) * 1024 * 1024 * hw.CacheFraction)
	return &NFSNode{
		Spec:      spec,
		eng:       eng,
		hw:        hw,
		CPU:       NewResource(eng),
		Disk:      NewResource(eng),
		NIC:       NewResource(eng),
		pageCache: cache.NewLRU(cacheBytes),
	}
}

// Ops returns served file operations.
func (s *NFSNode) Ops() uint64 { return s.ops }

// CacheStats exposes the server's page-cache counters.
func (s *NFSNode) CacheStats() cache.Stats { return s.pageCache.Stats() }

// Fetch serves one remote file access and calls done when the bytes have
// left the server's NIC.
func (s *NFSNode) Fetch(obj content.Object, done func()) {
	scale := cpuScale(s.Spec)
	s.ops++
	s.CPU.Enqueue(scaleDur(s.hw.NFSPerOpCPU, scale), func() {
		transfer := func() {
			chunk := bytesTime(64<<10, s.hw.NICBytesPerSec)
			s.NIC.EnqueueChunked(bytesTime(obj.Size, s.hw.NICBytesPerSec), chunk, done)
		}
		if _, hit := s.pageCache.Get(obj.Path); hit {
			transfer()
			return
		}
		seek := s.hw.seekFor(s.Spec)
		read := bytesTime(obj.Size, s.hw.diskBWFor(s.Spec))
		chunk := seek + bytesTime(256<<10, s.hw.diskBWFor(s.Spec))
		s.Disk.EnqueueChunked(seek+read, chunk, func() {
			s.pageCache.Put(obj.Path, objSize(obj.Size))
			transfer()
		})
	})
}
