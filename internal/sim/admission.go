package sim

import (
	"fmt"

	"webcluster/internal/content"
)

// Discrete-event model of the front end's SLO-class admission control.
// The real subsystem (internal/admission) gates a concurrent request
// path with atomics and bounded queues; under the single-threaded event
// engine the same policy reduces to plain per-class in-flight counters
// checked at routing time. The shedding ladder matches the real
// controller: batch beyond its share is rejected outright, interactive
// beyond its share degrades to a front-end "stale" answer (the NIC
// relays a cached body, no back-end work), and critical borrows up to a
// headroom multiple of its share before anything is refused.

// SLOClass is a simulated request's service-level class.
type SLOClass uint8

// The classes, in shedding-priority order (mirrors admission.Class).
const (
	SLOCritical SLOClass = iota
	SLOInteractive
	SLOBatch
)

// NumSLOClasses is the number of SLO classes.
const NumSLOClasses = 3

// String names the class with the wire/spec names.
func (c SLOClass) String() string {
	switch c {
	case SLOCritical:
		return "critical"
	case SLOBatch:
		return "batch"
	default:
		return "interactive"
	}
}

// ParseSLOClass maps a workload spec's sloClass value to a class; the
// empty string is the interactive default.
func ParseSLOClass(s string) (SLOClass, error) {
	switch s {
	case "critical":
		return SLOCritical, nil
	case "interactive", "":
		return SLOInteractive, nil
	case "batch":
		return SLOBatch, nil
	}
	return SLOInteractive, fmt.Errorf("sim: unknown SLO class %q", s)
}

// RouteOutcome is the terminal disposition of one simulated request.
type RouteOutcome uint8

// Outcomes.
const (
	// RouteOK: routed, served by a back end, relayed.
	RouteOK RouteOutcome = iota
	// RouteError: no route / no live replica.
	RouteError
	// RouteShed: refused by admission control (the 503 + Retry-After
	// rung).
	RouteShed
	// RouteStale: degraded to a front-end cached answer; the client got
	// bytes, no back end was touched.
	RouteStale
)

// AdmissionParams configures the simulated admission gate.
type AdmissionParams struct {
	// MaxConcurrent is the front end's concurrency budget; default 256.
	MaxConcurrent int
	// Shares split the budget per class (critical, interactive, batch);
	// default 3:2:1.
	Shares [NumSLOClasses]int
	// CriticalHeadroom lets the critical class borrow beyond its share
	// up to headroom x share before shedding; default 2.
	CriticalHeadroom float64
}

// frontAdmission is the per-class gate state (engine-driven, so plain
// ints — no concurrency inside a simulation run).
type frontAdmission struct {
	limit    [NumSLOClasses]int
	critMax  int
	inflight [NumSLOClasses]int
	shed     [NumSLOClasses]uint64
	stale    uint64
}

// EnableAdmission arms SLO-class admission control on the front end.
// Call before traffic starts.
func (f *Frontend) EnableAdmission(p AdmissionParams) {
	total := p.MaxConcurrent
	if total <= 0 {
		total = 256
	}
	shares := p.Shares
	if shares == ([NumSLOClasses]int{}) {
		shares = [NumSLOClasses]int{3, 2, 1}
	}
	sum := 0
	for i, s := range shares {
		if s <= 0 {
			shares[i] = 1
		}
		sum += shares[i]
	}
	headroom := p.CriticalHeadroom
	if headroom < 1 {
		headroom = 2
	}
	adm := &frontAdmission{}
	for i := range adm.limit {
		adm.limit[i] = total * shares[i] / sum
		if adm.limit[i] < 1 {
			adm.limit[i] = 1
		}
	}
	adm.critMax = int(float64(adm.limit[SLOCritical]) * headroom)
	f.adm = adm
}

// Shed returns how many requests of the class were refused by admission.
func (f *Frontend) Shed(c SLOClass) uint64 {
	if f.adm == nil {
		return 0
	}
	return f.adm.shed[c]
}

// StaleServed returns how many interactive requests were degraded to
// front-end stale answers.
func (f *Frontend) StaleServed() uint64 {
	if f.adm == nil {
		return 0
	}
	return f.adm.stale
}

// admit runs the admission ladder for one arrival; called from the CPU
// resource's completion (the front end has paid the parse/route cost
// either way). Returns the verdict; an admitted request holds a class
// slot until its back-end service completes.
func (a *frontAdmission) admit(c SLOClass) RouteOutcome {
	switch c {
	case SLOBatch:
		if a.inflight[c] >= a.limit[c] {
			a.shed[c]++
			return RouteShed
		}
	case SLOInteractive:
		if a.inflight[c] >= a.limit[c] {
			a.stale++
			return RouteStale
		}
	default: // SLOCritical borrows up to its headroom before refusing.
		if a.inflight[c] >= a.critMax {
			a.shed[c]++
			return RouteShed
		}
	}
	a.inflight[c]++
	return RouteOK
}

// RouteSLO sends one classified request through the front end: admission
// first (when enabled), then the same route/serve/relay path as Route.
// done receives the terminal outcome after the last relayed byte (for
// served and stale answers) or at the shed decision (nothing is relayed
// for a reject). With admission disabled every request takes the exact
// pre-admission path and only RouteOK/RouteError occur.
func (f *Frontend) RouteSLO(obj content.Object, slo SLOClass, done func(RouteOutcome)) {
	var decisionCost = f.hw.L4ForwardCPU
	if f.kind == FrontContentAware {
		decisionCost = f.hw.RouteLookupCPU
	}
	f.CPU.Enqueue(decisionCost, func() {
		if f.adm != nil {
			switch f.adm.admit(slo) {
			case RouteShed:
				// Refused before any routing work: the 503 costs only the
				// decision CPU already paid.
				done(RouteShed)
				return
			case RouteStale:
				// Degraded: the front end answers from its own cache — the
				// response bytes still cross the NIC, no back end is
				// touched.
				relay := bytesTime(obj.Size, f.hw.FrontendRelayBytesPerSec)
				chunk := bytesTime(64<<10, f.hw.FrontendRelayBytesPerSec)
				f.NIC.EnqueueChunked(relay, chunk, func() { done(RouteStale) })
				return
			}
		}
		node, err := f.pick(obj)
		if err != nil {
			f.noRoute++
			f.releaseSLO(slo)
			done(RouteError)
			return
		}
		f.routed++
		started := f.eng.Now()
		node.Serve(obj, func(ok bool) {
			// The admission slot covers the back-end service; the relay
			// back through the front end runs on the NIC after release.
			f.releaseSLO(slo)
			if f.observer != nil {
				f.observer(node.Spec.ID, obj.Class, f.eng.Now()-started)
			}
			// Relay the response bytes back through the front end,
			// chunked for fair link sharing.
			relay := bytesTime(obj.Size, f.hw.FrontendRelayBytesPerSec)
			chunk := bytesTime(64<<10, f.hw.FrontendRelayBytesPerSec)
			f.NIC.EnqueueChunked(relay, chunk, func() {
				if ok {
					done(RouteOK)
				} else {
					done(RouteError)
				}
			})
		})
	})
}

// releaseSLO returns an admitted request's class slot.
func (f *Frontend) releaseSLO(c SLOClass) {
	if f.adm != nil {
		f.adm.inflight[c]--
	}
}
